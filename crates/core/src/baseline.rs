//! The two baselines of §5: chronological ordering (CHR) and random
//! ordering (RAN).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pmr_sim::{Corpus, TweetId};

use crate::eval::{average_precision, ScoredDoc};
use crate::split::UserSplit;

/// AP of the chronological baseline: the test set ranked from the latest
/// tweet (first) to the earliest (last).
pub fn chronological_ap(corpus: &Corpus, split: &UserSplit) -> f64 {
    let docs: Vec<ScoredDoc> = split
        .test_docs()
        .into_iter()
        .map(|id| ScoredDoc {
            score: corpus.tweet(id).timestamp as f64,
            relevant: split.is_positive(id),
            tie_break: crate::eval::tie_break_key(id.0),
        })
        .collect();
    average_precision(&docs)
}

/// AP of the random baseline, averaged over `iterations` arbitrary
/// orderings (the paper uses 1,000 per user).
pub fn random_ap(split: &UserSplit, iterations: usize, seed: u64) -> f64 {
    let test: Vec<TweetId> = split.test_docs();
    let mut rng = StdRng::seed_from_u64(seed ^ (split.user.0 as u64).wrapping_mul(0x517C_C1B7));
    let mut total = 0.0f64;
    for _ in 0..iterations.max(1) {
        let docs: Vec<ScoredDoc> = test
            .iter()
            .map(|&id| ScoredDoc {
                score: rng.gen_range(0.0..1.0),
                relevant: split.is_positive(id),
                tie_break: crate::eval::tie_break_key(id.0),
            })
            .collect();
        total += average_precision(&docs);
    }
    total / iterations.max(1) as f64
}

/// Reference expectation of the random baseline's AP for `r` relevant
/// documents among `n`, estimated by a heavily-sampled fixed-seed Monte
/// Carlo (deterministic, accurate to ~1e-3). Used as a cross-check for
/// [`random_ap`]: with the paper's 1:4 class ratio it concentrates near
/// 0.27, matching the RAN MAP of 0.270 the paper reports.
pub fn random_ap_expectation(n: usize, r: usize) -> f64 {
    if r == 0 || n == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(0xABCD_EF01);
    let iters = 20_000;
    let mut total = 0.0;
    for _ in 0..iters {
        let docs: Vec<ScoredDoc> = (0..n)
            .map(|i| ScoredDoc {
                score: rng.gen_range(0.0..1.0),
                relevant: i < r,
                tie_break: i as u32,
            })
            .collect();
        total += average_precision(&docs);
    }
    total / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::{SplitConfig, TrainTestSplit};
    use pmr_sim::{generate_corpus, ScalePreset, SimConfig};

    fn setup() -> (Corpus, TrainTestSplit) {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 99));
        let split = TrainTestSplit::compute(&corpus, SplitConfig::default())
            .expect("smoke corpus is well-formed");
        (corpus, split)
    }

    #[test]
    fn random_baseline_matches_class_ratio() {
        let (_, split) = setup();
        let mut total = 0.0;
        let mut n = 0;
        for u in split.users() {
            total += random_ap(split.user(u).unwrap(), 200, 1);
            n += 1;
        }
        let map = total / n as f64;
        // With a 1:4 positive:negative ratio, random MAP sits near 0.27
        // (the paper reports 0.270 for RAN).
        assert!((0.2..0.45).contains(&map), "random MAP out of band: {map}");
    }

    #[test]
    fn random_ap_is_deterministic_in_the_seed() {
        let (_, split) = setup();
        let u = split.users().next().unwrap();
        let s = split.user(u).unwrap();
        assert_eq!(random_ap(s, 50, 9), random_ap(s, 50, 9));
        assert_ne!(random_ap(s, 50, 9), random_ap(s, 50, 10));
    }

    #[test]
    fn sampled_random_ap_matches_expectation() {
        // 2 relevant among 10.
        let expected = random_ap_expectation(10, 2);
        // Monte-Carlo against an independent seed path.
        let split = UserSplit {
            user: pmr_sim::UserId(0),
            split_time: 0,
            positives: vec![pmr_sim::TweetId(0), pmr_sim::TweetId(1)],
            negatives: (2..10u32).map(pmr_sim::TweetId).collect(),
        };
        let sampled = random_ap(&split, 5_000, 3);
        assert!((sampled - expected).abs() < 0.02, "sampled {sampled} vs expectation {expected}");
    }

    #[test]
    fn chronological_ranks_by_recency() {
        let (corpus, split) = setup();
        let u = split.users().next().unwrap();
        let s = split.user(u).unwrap();
        let ap = chronological_ap(&corpus, s);
        assert!((0.0..=1.0).contains(&ap));
    }

    #[test]
    fn expectation_edge_cases() {
        assert_eq!(random_ap_expectation(0, 0), 0.0);
        assert_eq!(random_ap_expectation(10, 0), 0.0);
        // All relevant → AP is always 1.
        assert!((random_ap_expectation(5, 5) - 1.0).abs() < 1e-9);
    }
}
