//! The repo-wide top-k tie-break contract.
//!
//! Every ranking consumer — the batch evaluator's AP sort, the serving
//! engine's per-query top-k, and the retrieval layer's threshold heap —
//! orders scored items by **score descending, tie key ascending**, with
//! [`f64::total_cmp`] keeping the order total even for (impossible in
//! practice) NaNs. Centralizing the comparator here means heap order,
//! sort order and merge order can never drift apart: a pruned-with-rescore
//! ranking is byte-identical to an exhaustive one precisely because both
//! sides sort under this one function.
//!
//! The tie key is caller-chosen: the serving engine uses the raw tweet id
//! (its public contract — "ties broken by ascending tweet id"), while
//! batch evaluation uses [`crate::eval::tie_break_key`]'s label-independent
//! hash of the id. Both are total orders over distinct keys, which is all
//! the comparator needs.

use std::cmp::Ordering;

/// Compare two scored items under the shared top-k total order: score
/// descending (`total_cmp`), then tie key ascending. `Less` means `a`
/// ranks *before* `b`.
pub fn rank_cmp<K: Ord>(a_score: f64, a_key: &K, b_score: f64, b_key: &K) -> Ordering {
    b_score.total_cmp(&a_score).then_with(|| a_key.cmp(b_key))
}

/// One scored entry of a [`ThresholdHeap`].
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry<K: Ord> {
    score: f64,
    key: K,
}

impl<K: Ord> Eq for Entry<K> {}

impl<K: Ord> PartialOrd for Entry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord> Ord for Entry<K> {
    /// `Greater` = ranks later under [`rank_cmp`], so the max-heap's root
    /// is always the *worst* kept entry — the pruning threshold.
    fn cmp(&self, other: &Self) -> Ordering {
        rank_cmp(self.score, &self.key, other.score, &other.key)
    }
}

/// A bounded best-`k` collector under the shared ranking order, exposing
/// the worst kept score as the WAND/max-score pruning threshold.
///
/// Order-insensitive by construction: offering the same `(score, key)`
/// multiset in any permutation yields the same kept set and the same
/// [`ThresholdHeap::into_sorted`] output (the permutation-invariance test
/// below pins this), so heap internals can never leak into results.
#[derive(Debug, Clone)]
pub struct ThresholdHeap<K: Ord> {
    capacity: usize,
    heap: std::collections::BinaryHeap<Entry<K>>,
}

impl<K: Ord> ThresholdHeap<K> {
    /// An empty heap keeping at most `capacity` entries.
    pub fn new(capacity: usize) -> ThresholdHeap<K> {
        ThresholdHeap { capacity, heap: std::collections::BinaryHeap::new() }
    }

    /// Number of kept entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The score an entry must *strictly* beat (under [`rank_cmp`], i.e.
    /// possibly only on the tie key) to enter a full heap; `None` while
    /// the heap still has room, so nothing may be pruned yet.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() < self.capacity {
            None
        } else {
            self.heap.peek().map(|e| e.score)
        }
    }

    /// Offer an entry; returns whether it was kept. With the heap full,
    /// the offered entry replaces the current worst iff it ranks strictly
    /// before it under [`rank_cmp`].
    pub fn offer(&mut self, score: f64, key: K) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(Entry { score, key });
            return true;
        }
        // pmr-lint: allow(lib-unwrap): capacity > 0 and the heap is full here, so a root exists
        let worst = self.heap.peek().expect("full heap has a root");
        if rank_cmp(score, &key, worst.score, &worst.key) == Ordering::Less {
            self.heap.pop();
            self.heap.push(Entry { score, key });
            true
        } else {
            false
        }
    }

    /// The kept entries, best first under [`rank_cmp`].
    pub fn into_sorted(self) -> Vec<(f64, K)> {
        let mut entries: Vec<Entry<K>> = self.heap.into_vec();
        entries.sort();
        entries.into_iter().map(|e| (e.score, e.key)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_cmp_orders_score_desc_then_key_asc() {
        assert_eq!(rank_cmp(2.0, &5u32, 1.0, &0u32), Ordering::Less);
        assert_eq!(rank_cmp(1.0, &0u32, 2.0, &5u32), Ordering::Greater);
        assert_eq!(rank_cmp(1.0, &3u32, 1.0, &7u32), Ordering::Less);
        assert_eq!(rank_cmp(1.0, &7u32, 1.0, &3u32), Ordering::Greater);
        assert_eq!(rank_cmp(1.0, &7u32, 1.0, &7u32), Ordering::Equal);
    }

    #[test]
    fn rank_cmp_is_total_even_for_nan() {
        // NaN sorts deterministically under total_cmp: positive NaN is
        // greater than every finite score (so it ranks *before* them in
        // descending order), negative NaN below (so it ranks last). Either
        // way an impossible NaN cannot make results scheduling-dependent.
        assert_eq!(rank_cmp(f64::NAN, &0u32, 1.0, &1u32), Ordering::Less);
        assert_eq!(rank_cmp(1.0, &1u32, f64::NAN, &0u32), Ordering::Greater);
        assert_eq!(rank_cmp(-f64::NAN, &0u32, 1.0, &1u32), Ordering::Greater);
        assert_eq!(rank_cmp(f64::NAN, &0u32, f64::NAN, &0u32), Ordering::Equal);
    }

    #[test]
    fn heap_keeps_the_best_k() {
        let mut heap = ThresholdHeap::new(2);
        assert!(heap.threshold().is_none());
        heap.offer(1.0, 10u32);
        heap.offer(3.0, 20);
        assert_eq!(heap.threshold(), Some(1.0));
        assert!(heap.offer(2.0, 30), "2.0 beats the worst kept 1.0");
        assert!(!heap.offer(0.5, 40), "0.5 does not");
        assert_eq!(heap.into_sorted(), vec![(3.0, 20), (2.0, 30)]);
    }

    #[test]
    fn heap_breaks_score_ties_by_key() {
        let mut heap = ThresholdHeap::new(1);
        heap.offer(1.0, 9u32);
        assert!(heap.offer(1.0, 3), "equal score, smaller key ranks before");
        assert!(!heap.offer(1.0, 5), "equal score, larger key than kept 3");
        assert_eq!(heap.into_sorted(), vec![(1.0, 3)]);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut heap = ThresholdHeap::new(0);
        assert!(!heap.offer(5.0, 1u32));
        assert!(heap.is_empty());
        assert!(heap.into_sorted().is_empty());
    }

    #[test]
    fn heap_order_is_permutation_invariant() {
        // The regression the tie-break unification exists for: feeding the
        // same (score, key) multiset in any order must produce the same
        // kept set in the same output order — heap internals must never
        // leak into results. Equal scores included.
        let base: Vec<(f64, u32)> =
            vec![(0.7, 4), (0.5, 2), (0.5, 9), (0.5, 1), (0.9, 8), (0.1, 0), (0.5, 6), (0.9, 3)];
        for k in [1, 3, 5, base.len()] {
            let reference = {
                let mut h = ThresholdHeap::new(k);
                for &(s, key) in &base {
                    h.offer(s, key);
                }
                h.into_sorted()
            };
            // Also pin against a full sort under the shared comparator.
            let mut sorted = base.clone();
            sorted.sort_by(|a, b| rank_cmp(a.0, &a.1, b.0, &b.1));
            sorted.truncate(k);
            assert_eq!(reference, sorted, "heap(k={k}) must equal sort-then-truncate");
            for rotation in 0..base.len() {
                let mut permuted = base.clone();
                permuted.rotate_left(rotation);
                let last = permuted.len() - 1;
                permuted.swap(0, last);
                let mut h = ThresholdHeap::new(k);
                for &(s, key) in &permuted {
                    h.offer(s, key);
                }
                assert_eq!(h.into_sorted(), reference, "k={k} rotation={rotation}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// For any multiset of (score, key) pairs and any capacity, the
        /// heap equals sort-under-rank_cmp + truncate, independent of
        /// offer order.
        #[test]
        fn heap_equals_sorted_truncation(
            items in proptest::collection::vec((-10.0f64..10.0, 0u32..50), 0..40),
            k in 0usize..12,
            rotation in 0usize..40,
        ) {
            let mut expected = items.clone();
            expected.sort_by(|a, b| rank_cmp(a.0, &a.1, b.0, &b.1));
            // Duplicate (score, key) pairs make the truncation ambiguous
            // only in which *copy* survives — values are equal either way.
            expected.truncate(k);
            let mut permuted = items.clone();
            if !permuted.is_empty() {
                let r = rotation % permuted.len();
                permuted.rotate_left(r);
            }
            let mut heap = ThresholdHeap::new(k);
            for &(s, key) in &permuted {
                heap.offer(s, key);
            }
            prop_assert_eq!(heap.into_sorted(), expected);
        }
    }
}
