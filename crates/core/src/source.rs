//! Representation sources (§2): where a user's training documents come from.
//!
//! Five atomic sources — the user's retweets `R`, her other tweets `T`, her
//! followees' posts `E`, her followers' posts `F` and her reciprocal
//! connections' posts `C` — plus the eight pairwise combinations the paper
//! evaluates (TR, RE, RF, RC, TE, TF, TC, EF), for thirteen in total.

use serde::{Deserialize, Serialize};

use pmr_sim::{Corpus, TweetId, UserId};

/// The thirteen representation sources of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RepresentationSource {
    /// The user's retweets.
    R,
    /// The user's tweets except retweets.
    T,
    /// All (re)tweets of followees.
    E,
    /// All (re)tweets of followers.
    F,
    /// All (re)tweets of reciprocal connections.
    C,
    /// `T ∪ R`.
    TR,
    /// `R ∪ E`.
    RE,
    /// `R ∪ F`.
    RF,
    /// `R ∪ C`.
    RC,
    /// `T ∪ E`.
    TE,
    /// `T ∪ F`.
    TF,
    /// `T ∪ C`.
    TC,
    /// `E ∪ F`.
    EF,
}

impl RepresentationSource {
    /// All thirteen sources in the paper's Table 6 column order.
    pub const ALL: [RepresentationSource; 13] = [
        RepresentationSource::R,
        RepresentationSource::T,
        RepresentationSource::E,
        RepresentationSource::F,
        RepresentationSource::C,
        RepresentationSource::TR,
        RepresentationSource::RE,
        RepresentationSource::RF,
        RepresentationSource::RC,
        RepresentationSource::TE,
        RepresentationSource::TF,
        RepresentationSource::TC,
        RepresentationSource::EF,
    ];

    /// The five atomic sources.
    pub const ATOMIC: [RepresentationSource; 5] = [
        RepresentationSource::R,
        RepresentationSource::T,
        RepresentationSource::E,
        RepresentationSource::F,
        RepresentationSource::C,
    ];

    /// The eight sources of the effectiveness figures (Figures 3–6): the
    /// five atomic sources plus the three best-performing pairs.
    pub const FIGURES: [RepresentationSource; 8] = [
        RepresentationSource::T,
        RepresentationSource::R,
        RepresentationSource::E,
        RepresentationSource::F,
        RepresentationSource::C,
        RepresentationSource::TR,
        RepresentationSource::RC,
        RepresentationSource::RE,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            RepresentationSource::R => "R",
            RepresentationSource::T => "T",
            RepresentationSource::E => "E",
            RepresentationSource::F => "F",
            RepresentationSource::C => "C",
            RepresentationSource::TR => "TR",
            RepresentationSource::RE => "RE",
            RepresentationSource::RF => "RF",
            RepresentationSource::RC => "RC",
            RepresentationSource::TE => "TE",
            RepresentationSource::TF => "TF",
            RepresentationSource::TC => "TC",
            RepresentationSource::EF => "EF",
        }
    }

    /// The atomic sources this source unions.
    pub fn components(self) -> &'static [RepresentationSource] {
        use RepresentationSource as S;
        match self {
            S::R => &[S::R],
            S::T => &[S::T],
            S::E => &[S::E],
            S::F => &[S::F],
            S::C => &[S::C],
            S::TR => &[S::T, S::R],
            S::RE => &[S::R, S::E],
            S::RF => &[S::R, S::F],
            S::RC => &[S::R, S::C],
            S::TE => &[S::T, S::E],
            S::TF => &[S::T, S::F],
            S::TC => &[S::T, S::C],
            S::EF => &[S::E, S::F],
        }
    }

    /// Whether the source contains both positive and negative examples —
    /// the condition under which the paper applies the Rocchio aggregation
    /// (§4: C, E, TE, RE, TC, RC and EF).
    pub fn has_negative_examples(self) -> bool {
        use RepresentationSource as S;
        matches!(self, S::C | S::E | S::TE | S::RE | S::TC | S::RC | S::EF)
    }

    /// Materialize the source's tweet ids for a user over the *whole*
    /// timeline (the split layer then restricts to the training phase).
    /// Atomic sources delegate to the corpus accessors; unions dedupe and
    /// re-sort by time.
    pub fn tweet_ids(self, corpus: &Corpus, user: UserId) -> Vec<TweetId> {
        let atomic = |s: RepresentationSource| -> Vec<TweetId> {
            match s {
                RepresentationSource::R => corpus.retweets_of(user).to_vec(),
                RepresentationSource::T => corpus.originals_of(user).to_vec(),
                RepresentationSource::E => corpus.incoming_of(user),
                RepresentationSource::F => corpus.followers_tweets_of(user),
                RepresentationSource::C => corpus.reciprocal_tweets_of(user),
                _ => unreachable!("components() only returns atomic sources"),
            }
        };
        let mut ids: Vec<TweetId> = self.components().iter().flat_map(|&s| atomic(s)).collect();
        ids.sort_by_key(|id| (corpus.tweet(*id).timestamp, *id));
        ids.dedup();
        ids
    }
}

impl std::fmt::Display for RepresentationSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_sim::{generate_corpus, ScalePreset, SimConfig};

    fn corpus() -> Corpus {
        generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 99))
    }

    #[test]
    fn thirteen_sources() {
        assert_eq!(RepresentationSource::ALL.len(), 13);
        let unique: std::collections::HashSet<_> = RepresentationSource::ALL.iter().collect();
        assert_eq!(unique.len(), 13);
    }

    #[test]
    fn rocchio_sources_match_section_4() {
        use RepresentationSource as S;
        let with_negatives: Vec<S> =
            S::ALL.iter().copied().filter(|s| s.has_negative_examples()).collect();
        assert_eq!(with_negatives, vec![S::E, S::C, S::RE, S::RC, S::TE, S::TC, S::EF]);
    }

    #[test]
    fn union_sources_dedupe_and_cover_components() {
        let c = corpus();
        let u = c.evaluated_user_ids().next().unwrap();
        let t = RepresentationSource::T.tweet_ids(&c, u);
        let r = RepresentationSource::R.tweet_ids(&c, u);
        let tr = RepresentationSource::TR.tweet_ids(&c, u);
        assert_eq!(tr.len(), t.len() + r.len(), "T and R are disjoint");
        let set: std::collections::HashSet<_> = tr.iter().collect();
        assert!(t.iter().all(|id| set.contains(id)));
        assert!(r.iter().all(|id| set.contains(id)));
    }

    #[test]
    fn sources_are_time_ordered() {
        let c = corpus();
        let u = c.evaluated_user_ids().nth(3).unwrap();
        for s in RepresentationSource::ALL {
            let ids = s.tweet_ids(&c, u);
            for w in ids.windows(2) {
                assert!(c.tweet(w[0]).timestamp <= c.tweet(w[1]).timestamp, "{s} not time-ordered");
            }
        }
    }

    #[test]
    fn c_is_subset_of_e_and_f() {
        let c = corpus();
        let u = c.evaluated_user_ids().nth(5).unwrap();
        let e: std::collections::HashSet<_> =
            RepresentationSource::E.tweet_ids(&c, u).into_iter().collect();
        let f: std::collections::HashSet<_> =
            RepresentationSource::F.tweet_ids(&c, u).into_iter().collect();
        for id in RepresentationSource::C.tweet_ids(&c, u) {
            assert!(e.contains(&id) && f.contains(&id), "C must be E ∩ F");
        }
    }

    #[test]
    fn figures_list_has_eight_sources() {
        assert_eq!(RepresentationSource::FIGURES.len(), 8);
    }
}
