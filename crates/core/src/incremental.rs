//! The unified incremental-model interface the serving engine builds on.
//!
//! All three online families — bag, graph, topic — share the same life
//! cycle: *observe* a document into the user's state, *decay* history,
//! *score* a candidate, and round-trip through a *snapshot* for elastic
//! resharding. [`IncrementalModel`] names that contract once so the
//! serving layer (and any future family) codes against one shape instead
//! of three ad-hoc ones.
//!
//! The families differ in what a snapshot needs to come back to life:
//!
//! * **bag** and **graph** snapshots are self-contained (`RestoreCtx =
//!   ()`) — the model owns its feature space;
//! * **topic** snapshots carry only the user's [`TopicProfile`]; the
//!   shared [`TopicBackground`] is a pure function of `(corpus, config,
//!   epoch)` and is re-derived by the restoring engine, then injected as
//!   the restore context. Serializing φ into every user snapshot would
//!   bloat the wire format and, worse, make snapshot bytes depend on when
//!   the last retrain happened relative to the snapshot barrier.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

use pmr_topics::{OnlineTopicModel, TopicBackground, TopicDoc, TopicProfile};

use crate::online::{OnlineBagModel, OnlineGraphModel};

/// An incrementally maintained user model: the serving engine's view of
/// one family. Implementations must be *deterministic*: `observe` and
/// `score` are pure functions of the model state and the document, never
/// of thread, shard, or call-order context.
pub trait IncrementalModel: Sized {
    /// The document representation this family consumes.
    type Doc;
    /// The serialized form of the per-user state.
    type Snapshot: Serialize + Deserialize;
    /// Shared state a restore needs beyond the snapshot itself.
    type RestoreCtx;

    /// Fold one observed document into the model (one decay step, then
    /// the document at full weight).
    fn observe(&mut self, doc: &Self::Doc);

    /// Apply one forgetting step without observing anything. A no-op for
    /// families whose update operator has no forgetting knob (graph).
    fn decay_step(&mut self);

    /// Score a candidate document against the current model. Takes `&mut`
    /// because the graph family interns candidate grams into its space.
    fn score(&mut self, doc: &Self::Doc) -> f64;

    /// Number of observed documents.
    fn documents(&self) -> usize;

    /// The serializable per-user state.
    fn snapshot(&self) -> Self::Snapshot;

    /// Rebuild from a snapshot plus the family's shared context.
    fn restore(snapshot: Self::Snapshot, ctx: Self::RestoreCtx) -> Self;
}

impl IncrementalModel for OnlineBagModel {
    type Doc = Vec<String>;
    type Snapshot = OnlineBagModel;
    type RestoreCtx = ();

    fn observe(&mut self, doc: &Self::Doc) {
        OnlineBagModel::observe(self, doc);
    }

    fn decay_step(&mut self) {
        OnlineBagModel::decay_step(self);
    }

    fn score(&mut self, doc: &Self::Doc) -> f64 {
        OnlineBagModel::score(self, doc)
    }

    fn documents(&self) -> usize {
        OnlineBagModel::documents(self)
    }

    fn snapshot(&self) -> Self::Snapshot {
        self.clone()
    }

    fn restore(snapshot: Self::Snapshot, _ctx: ()) -> Self {
        snapshot
    }
}

impl IncrementalModel for OnlineGraphModel {
    type Doc = Vec<String>;
    type Snapshot = OnlineGraphModel;
    type RestoreCtx = ();

    fn observe(&mut self, doc: &Self::Doc) {
        OnlineGraphModel::observe(self, doc);
    }

    /// The n-gram graph update operator's `1/(k+1)` learning factor is a
    /// running average — there is no forgetting knob to turn.
    fn decay_step(&mut self) {}

    fn score(&mut self, doc: &Self::Doc) -> f64 {
        OnlineGraphModel::score(self, doc)
    }

    fn documents(&self) -> usize {
        OnlineGraphModel::documents(self)
    }

    fn snapshot(&self) -> Self::Snapshot {
        self.clone()
    }

    fn restore(snapshot: Self::Snapshot, _ctx: ()) -> Self {
        snapshot
    }
}

impl IncrementalModel for OnlineTopicModel {
    type Doc = TopicDoc;
    type Snapshot = TopicProfile;
    type RestoreCtx = Arc<TopicBackground>;

    fn observe(&mut self, doc: &Self::Doc) {
        OnlineTopicModel::observe(self, doc);
    }

    fn decay_step(&mut self) {
        OnlineTopicModel::decay_step(self);
    }

    fn score(&mut self, doc: &Self::Doc) -> f64 {
        OnlineTopicModel::score(self, doc)
    }

    fn documents(&self) -> usize {
        OnlineTopicModel::documents(self)
    }

    fn snapshot(&self) -> Self::Snapshot {
        self.profile().clone()
    }

    fn restore(snapshot: Self::Snapshot, ctx: Self::RestoreCtx) -> Self {
        OnlineTopicModel::from_profile(snapshot, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_bag::{BagSimilarity, BagVectorizer, WeightingScheme};
    use pmr_graph::GraphSimilarity;
    use pmr_topics::OnlineTopicConfig;

    fn grams(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    /// Drive any family through the shared life cycle and check the
    /// snapshot round trip preserves scoring exactly.
    fn roundtrip_preserves_scores<M: IncrementalModel>(
        mut model: M,
        observed: &[M::Doc],
        probe: &M::Doc,
        ctx: M::RestoreCtx,
    ) {
        for doc in observed {
            model.observe(doc);
        }
        assert_eq!(model.documents(), observed.len());
        let mut restored = M::restore(model.snapshot(), ctx);
        assert_eq!(model.score(probe).to_bits(), restored.score(probe).to_bits());
        assert_eq!(restored.documents(), observed.len());
    }

    #[test]
    fn bag_round_trips_through_the_trait() {
        let docs = [grams("cats purr softly"), grams("cats nap often")];
        let vectorizer = BagVectorizer::fit(WeightingScheme::TF, docs.iter());
        let model = OnlineBagModel::new(vectorizer, BagSimilarity::Cosine, 0.9);
        roundtrip_preserves_scores(model, &docs, &grams("cats purr"), ());
    }

    #[test]
    fn graph_round_trips_through_the_trait() {
        let docs = [grams("cats purr softly"), grams("rust code compiles")];
        let model = OnlineGraphModel::new(GraphSimilarity::Value, 2);
        roundtrip_preserves_scores(model, &docs, &grams("cats purr"), ());
    }

    #[test]
    fn topic_round_trips_through_the_trait() {
        let train: Vec<Vec<u32>> = vec![vec![0, 1, 2], vec![3, 4, 5], vec![0, 1, 5]];
        let slices: Vec<&[u32]> = train.iter().map(Vec::as_slice).collect();
        let cfg = OnlineTopicConfig::paper(2, 20, 3);
        let bg = Arc::new(TopicBackground::train(&cfg, &slices, 6, 0));
        let docs: Vec<TopicDoc> = train
            .iter()
            .enumerate()
            .map(|(i, t)| TopicDoc { key: i as u64, tokens: t.clone() })
            .collect();
        let model = OnlineTopicModel::new(Arc::clone(&bg), 1.0);
        roundtrip_preserves_scores(model, &docs, &TopicDoc { key: 9, tokens: vec![0, 1] }, bg);
    }

    #[test]
    fn graph_decay_step_is_a_noop() {
        let mut model = OnlineGraphModel::new(GraphSimilarity::Value, 2);
        IncrementalModel::observe(&mut model, &grams("cats purr softly"));
        let before = IncrementalModel::score(&mut model, &grams("cats purr"));
        IncrementalModel::decay_step(&mut model);
        assert_eq!(
            before.to_bits(),
            IncrementalModel::score(&mut model, &grams("cats purr")).to_bits()
        );
    }

    #[test]
    fn bag_decay_step_matches_observe_prefix() {
        // observe = decay_step + add: a lone decay_step must shrink the
        // accumulated vector exactly like the decay half of observe.
        let docs = [grams("cats purr softly")];
        let vectorizer = BagVectorizer::fit(WeightingScheme::TF, docs.iter());
        let mut a = OnlineBagModel::new(vectorizer.clone(), BagSimilarity::Cosine, 0.5);
        let mut b = OnlineBagModel::new(vectorizer, BagSimilarity::Cosine, 0.5);
        a.observe(&docs[0]);
        b.observe(&docs[0]);
        IncrementalModel::decay_step(&mut a);
        // Cosine ignores scale, so compare the raw model vectors instead.
        let scaled: Vec<(u32, f32)> =
            b.model().entries().iter().map(|&(d, w)| (d, w * 0.5)).collect();
        assert_eq!(a.model().entries(), scaled.as_slice());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pmr_topics::OnlineTopicConfig;
    use proptest::prelude::*;

    /// Token-id documents over a small vocabulary.
    fn arb_doc() -> impl Strategy<Value = Vec<u32>> {
        proptest::collection::vec(0u32..12, 1..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The topic counterpart of the bag≡centroid pin: with decay 1.0
        /// and background epoch 0, the online topic model is the *sum* of
        /// fold-in θs over the materialized corpus, the batch counterpart
        /// folds every document in against the same epoch-0 background and
        /// sums — so both must agree on every score (to float noise) and
        /// on every candidate ranking.
        #[test]
        fn undecayed_online_topic_ranks_like_batch_fold_in(
            train in proptest::collection::vec(arb_doc(), 1..8),
            probes in proptest::collection::vec(arb_doc(), 2..6),
        ) {
            let slices: Vec<&[u32]> = train.iter().map(Vec::as_slice).collect();
            let cfg = OnlineTopicConfig::paper(3, 15, 11);
            let bg = Arc::new(TopicBackground::train(&cfg, &slices, 12, 0));

            // Online: observe the stream in order with no forgetting.
            let mut online = OnlineTopicModel::new(Arc::clone(&bg), 1.0);
            for (i, doc) in train.iter().enumerate() {
                IncrementalModel::observe(
                    &mut online,
                    &TopicDoc { key: i as u64, tokens: doc.clone() },
                );
            }

            // Batch: fold every materialized document in against the same
            // background and sum the θs.
            let mut batch = TopicProfile::new(1.0, bg.topics());
            for (i, doc) in train.iter().enumerate() {
                batch.observe(&bg.fold_in(doc, i as u64));
            }

            let probe_docs: Vec<TopicDoc> = probes
                .iter()
                .enumerate()
                .map(|(i, p)| TopicDoc { key: 1_000 + i as u64, tokens: p.clone() })
                .collect();
            let online_scores: Vec<f64> =
                probe_docs.iter().map(|p| IncrementalModel::score(&mut online, p)).collect();
            let batch_scores: Vec<f64> =
                probe_docs.iter().map(|p| batch.score(&bg.fold_in(&p.tokens, p.key))).collect();
            for (o, b) in online_scores.iter().zip(&batch_scores) {
                prop_assert!((o - b).abs() < 1e-9, "scores diverge: online {o}, batch {b}");
            }
            // Whenever batch separates two probes beyond float noise, the
            // online model must order them identically.
            for i in 0..probe_docs.len() {
                for j in 0..probe_docs.len() {
                    if batch_scores[i] > batch_scores[j] + 1e-9 {
                        prop_assert!(
                            online_scores[i] > online_scores[j],
                            "ranking flip between probes {i} and {j}: \
                             online ({}, {}) vs batch ({}, {})",
                            online_scores[i], online_scores[j],
                            batch_scores[i], batch_scores[j]
                        );
                    }
                }
            }
        }
    }
}
