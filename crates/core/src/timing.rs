//! Time-efficiency aggregation (§4: TTime and ETime; Figure 7).

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Min / average / max of a set of durations — one bar group of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeStats {
    /// Fastest observation.
    pub min: Duration,
    /// Mean observation.
    pub avg: Duration,
    /// Slowest observation.
    pub max: Duration,
}

impl TimeStats {
    /// Aggregate a set of observations (zeros if empty).
    pub fn from_durations(ds: &[Duration]) -> TimeStats {
        let Some((&first, rest)) = ds.split_first() else {
            return TimeStats { min: Duration::ZERO, avg: Duration::ZERO, max: Duration::ZERO };
        };
        let total: Duration = ds.iter().sum();
        let (min, max) = rest.iter().fold((first, first), |(lo, hi), &d| (lo.min(d), hi.max(d)));
        TimeStats { min, avg: total / ds.len() as u32, max }
    }
}

/// Render a duration in the compact style of the paper's log-scale axis.
pub fn human(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 1e-3 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_aggregate() {
        let ds = [Duration::from_millis(10), Duration::from_millis(30)];
        let s = TimeStats::from_durations(&ds);
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.max, Duration::from_millis(30));
        assert_eq!(s.avg, Duration::from_millis(20));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TimeStats::from_durations(&[]);
        assert_eq!(s.avg, Duration::ZERO);
    }

    #[test]
    fn human_formats_scale() {
        assert_eq!(human(Duration::from_micros(50)), "50µs");
        assert_eq!(human(Duration::from_millis(5)), "5.0ms");
        assert_eq!(human(Duration::from_secs(3)), "3.00s");
        assert_eq!(human(Duration::from_secs(600)), "10.0min");
    }
}
