//! Time-efficiency aggregation (§4: TTime and ETime; Figure 7).

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Min / average / max of a set of durations — one bar group of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeStats {
    /// Fastest observation.
    pub min: Duration,
    /// Mean observation.
    pub avg: Duration,
    /// Slowest observation.
    pub max: Duration,
}

impl TimeStats {
    /// Aggregate a set of observations (zeros if empty).
    pub fn from_durations(ds: &[Duration]) -> TimeStats {
        let Some((&first, rest)) = ds.split_first() else {
            return TimeStats { min: Duration::ZERO, avg: Duration::ZERO, max: Duration::ZERO };
        };
        let total: Duration = ds.iter().sum();
        let (min, max) = rest.iter().fold((first, first), |(lo, hi), &d| (lo.min(d), hi.max(d)));
        TimeStats { min, avg: total / ds.len() as u32, max }
    }
}

/// Render a duration in the compact style of the paper's log-scale axis.
pub fn human(d: Duration) -> String {
    let s = d.as_secs_f64();
    let us = s * 1e6;
    let ms = s * 1e3;
    // Unit choice happens *after* rounding to the printed precision:
    // 999.7µs would otherwise render as "1000µs" instead of "1.0ms", and
    // likewise at the ms→s and s→min boundaries.
    if us.round() < 1000.0 {
        format!("{us:.0}µs")
    } else if (ms * 10.0).round() < 10_000.0 {
        format!("{ms:.1}ms")
    } else if (s * 100.0).round() < 12_000.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}min", s / 60.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_aggregate() {
        let ds = [Duration::from_millis(10), Duration::from_millis(30)];
        let s = TimeStats::from_durations(&ds);
        assert_eq!(s.min, Duration::from_millis(10));
        assert_eq!(s.max, Duration::from_millis(30));
        assert_eq!(s.avg, Duration::from_millis(20));
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TimeStats::from_durations(&[]);
        assert_eq!(s.avg, Duration::ZERO);
    }

    #[test]
    fn human_formats_scale() {
        assert_eq!(human(Duration::from_micros(50)), "50µs");
        assert_eq!(human(Duration::from_millis(5)), "5.0ms");
        assert_eq!(human(Duration::from_secs(3)), "3.00s");
        assert_eq!(human(Duration::from_secs(600)), "10.0min");
    }

    #[test]
    fn human_rolls_over_at_unit_boundaries() {
        // Values that round up to a threshold must switch units instead of
        // rendering as "1000µs" / "1000.0ms" / "120.00s".
        assert_eq!(human(Duration::from_nanos(999_700)), "1.0ms");
        assert_eq!(human(Duration::from_micros(999_960)), "1.00s");
        assert_eq!(human(Duration::from_millis(119_996)), "2.0min");
        // Exact boundaries land in the larger unit.
        assert_eq!(human(Duration::from_millis(1)), "1.0ms");
        assert_eq!(human(Duration::from_secs(1)), "1.00s");
        assert_eq!(human(Duration::from_secs(120)), "2.0min");
        // Just below the printed precision stays in the smaller unit.
        assert_eq!(human(Duration::from_nanos(999_400)), "999µs");
        assert_eq!(human(Duration::from_micros(999_940)), "999.9ms");
        assert_eq!(human(Duration::from_millis(119_990)), "119.99s");
    }

    #[test]
    fn single_element_stats_collapse() {
        let s = TimeStats::from_durations(&[Duration::from_millis(7)]);
        assert_eq!(s.min, Duration::from_millis(7));
        assert_eq!(s.avg, Duration::from_millis(7));
        assert_eq!(s.max, Duration::from_millis(7));
    }

    #[test]
    fn large_sums_do_not_overflow() {
        // ~95 CPU-years per entry: the Duration sum stays exact where a
        // naive u64-nanosecond accumulator would overflow at ~584 years.
        let ds = vec![Duration::from_secs(3_000_000_000); 8];
        let s = TimeStats::from_durations(&ds);
        assert_eq!(s.min, Duration::from_secs(3_000_000_000));
        assert_eq!(s.avg, Duration::from_secs(3_000_000_000));
        assert_eq!(s.max, Duration::from_secs(3_000_000_000));
    }
}
