//! Evaluation measures (§4, "Performance Measures").
//!
//! Effectiveness is measured with Average Precision per user and Mean
//! Average Precision per user group; robustness with the *MAP deviation* —
//! the spread between the best and worst configuration of a model.

use serde::{Deserialize, Serialize};

/// A scored test document with its relevance label.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredDoc {
    /// Ranking score (higher = recommended earlier).
    pub score: f64,
    /// Whether the document was retweeted (relevant).
    pub relevant: bool,
    /// A stable tie-breaking key. MUST be statistically independent of the
    /// relevance label — derive it from the document id with
    /// [`tie_break_key`], never use the raw id (original tweets receive
    /// systematically lower ids than retweets in the simulator, so raw-id
    /// tie-breaking leaks the label into the ranking).
    pub tie_break: u32,
}

/// Deterministic label-independent tie-break key for a document id: a
/// bijective integer hash (SplitMix-style finalizer), so equal scores rank
/// in an order uncorrelated with how ids were assigned.
pub fn tie_break_key(id: u32) -> u32 {
    let mut x = id.wrapping_add(0x9E37_79B9);
    x = (x ^ (x >> 16)).wrapping_mul(0x85EB_CA6B);
    x = (x ^ (x >> 13)).wrapping_mul(0xC2B2_AE35);
    x ^ (x >> 16)
}

/// Average Precision of a ranked test set:
/// `AP = 1/|R| · Σ_n P@n · RT(n)` — the mean of the precision values at
/// every relevant position. Documents are ranked by descending score with
/// deterministic id tie-breaking.
///
/// Returns 0 when the test set contains no relevant document.
pub fn average_precision(docs: &[ScoredDoc]) -> f64 {
    let total_relevant = docs.iter().filter(|d| d.relevant).count();
    if total_relevant == 0 {
        return 0.0;
    }
    let mut ranked: Vec<&ScoredDoc> = docs.iter().collect();
    // The shared top-k contract: score desc, tie key asc, total even for
    // (impossible in practice) NaN scores.
    ranked.sort_by(|a, b| crate::ranking::rank_cmp(a.score, &a.tie_break, b.score, &b.tie_break));
    let mut hits = 0usize;
    let mut ap = 0.0f64;
    for (i, d) in ranked.iter().enumerate() {
        if d.relevant {
            hits += 1;
            ap += hits as f64 / (i + 1) as f64;
        }
    }
    ap / total_relevant as f64
}

/// Mean Average Precision over a user group: the mean of per-user APs.
pub fn mean_average_precision(aps: &[f64]) -> f64 {
    if aps.is_empty() {
        return 0.0;
    }
    aps.iter().sum::<f64>() / aps.len() as f64
}

/// Min and max of a MAP slice, `None` when empty. The single reduction both
/// [`map_deviation`] and [`MapSummary`] go through, so NaN handling (an NaN
/// poisons both ends via `f64::min`/`f64::max` semantics) cannot drift
/// between the two call sites.
fn min_max(maps: &[f64]) -> Option<(f64, f64)> {
    maps.iter().copied().map(|m| (m, m)).reduce(|(lo, hi), (m, _)| (lo.min(m), hi.max(m)))
}

/// MAP deviation: `max − min` MAP across a model's configurations — the
/// paper's robustness measure (lower is more robust).
pub fn map_deviation(maps: &[f64]) -> f64 {
    match min_max(maps) {
        Some((lo, hi)) => hi - lo,
        None => 0.0,
    }
}

/// Min / mean / max MAP over a set of configurations — the aggregate the
/// paper reports in Figures 3–6 and Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MapSummary {
    /// Lowest MAP across configurations.
    pub min: f64,
    /// Mean MAP across configurations.
    pub mean: f64,
    /// Highest MAP across configurations.
    pub max: f64,
}

impl MapSummary {
    /// Summarize a set of per-configuration MAPs.
    pub fn from_maps(maps: &[f64]) -> MapSummary {
        let Some((min, max)) = min_max(maps) else {
            return MapSummary { min: 0.0, mean: 0.0, max: 0.0 };
        };
        MapSummary { min, mean: maps.iter().sum::<f64>() / maps.len() as f64, max }
    }

    /// The robustness measure `max − min`.
    pub fn deviation(&self) -> f64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(spec: &[(f64, bool)]) -> Vec<ScoredDoc> {
        spec.iter()
            .enumerate()
            .map(|(i, &(score, relevant))| ScoredDoc { score, relevant, tie_break: i as u32 })
            .collect()
    }

    #[test]
    fn perfect_ranking_has_ap_one() {
        let d = docs(&[(0.9, true), (0.8, true), (0.2, false), (0.1, false)]);
        assert!((average_precision(&d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn worst_ranking_has_low_ap() {
        let d = docs(&[(0.9, false), (0.8, false), (0.2, true), (0.1, true)]);
        // Relevant at ranks 3 and 4: AP = (1/3 + 2/4) / 2.
        assert!((average_precision(&d) - (1.0 / 3.0 + 0.5) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn textbook_example() {
        // Relevant at ranks 1, 3, 5 of five docs.
        let d = docs(&[(5.0, true), (4.0, false), (3.0, true), (2.0, false), (1.0, true)]);
        let expected = (1.0 + 2.0 / 3.0 + 3.0 / 5.0) / 3.0;
        assert!((average_precision(&d) - expected).abs() < 1e-9);
    }

    #[test]
    fn no_relevant_docs_yield_zero() {
        let d = docs(&[(0.5, false)]);
        assert_eq!(average_precision(&d), 0.0);
        assert_eq!(average_precision(&[]), 0.0);
    }

    #[test]
    fn ties_break_deterministically_by_id() {
        let a = vec![
            ScoredDoc { score: 0.5, relevant: true, tie_break: 0 },
            ScoredDoc { score: 0.5, relevant: false, tie_break: 1 },
        ];
        let b = vec![
            ScoredDoc { score: 0.5, relevant: false, tie_break: 0 },
            ScoredDoc { score: 0.5, relevant: true, tie_break: 1 },
        ];
        assert!((average_precision(&a) - 1.0).abs() < 1e-9);
        assert!((average_precision(&b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ranking_ignores_input_order_entirely() {
        // Regression for the serving-era determinism audit: with the
        // (score, tie_break) pair fixed, AP must be invariant under any
        // permutation of the input slice — equal-score docs included —
        // because every ranking consumer (batch eval, baselines, the
        // serve engine's top-k) promises order-independence.
        let base = vec![
            ScoredDoc { score: 0.7, relevant: true, tie_break: 4 },
            ScoredDoc { score: 0.5, relevant: false, tie_break: 2 },
            ScoredDoc { score: 0.5, relevant: true, tie_break: 9 },
            ScoredDoc { score: 0.5, relevant: false, tie_break: 1 },
            ScoredDoc { score: 0.1, relevant: true, tie_break: 0 },
        ];
        let reference = average_precision(&base);
        // All rotations and a reversal — enough permutations to catch any
        // positional dependence in the sort.
        for rotation in 0..base.len() {
            let mut permuted = base.clone();
            permuted.rotate_left(rotation);
            assert_eq!(average_precision(&permuted), reference);
        }
        let mut reversed = base.clone();
        reversed.reverse();
        assert_eq!(average_precision(&reversed), reference);
    }

    #[test]
    fn all_tied_scores_reward_low_ids() {
        // With every score equal the ranking is the id order; AP depends
        // only on where the relevant ids sit — a property the RAN baseline
        // relies on NOT holding for random scores.
        let d = docs(&[(0.0, false), (0.0, true)]);
        assert!((average_precision(&d) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn map_is_the_mean() {
        assert!((mean_average_precision(&[0.2, 0.4, 0.6]) - 0.4).abs() < 1e-9);
        assert_eq!(mean_average_precision(&[]), 0.0);
    }

    #[test]
    fn deviation_is_spread() {
        assert!((map_deviation(&[0.2, 0.5, 0.3]) - 0.3).abs() < 1e-9);
        assert_eq!(map_deviation(&[]), 0.0);
        assert_eq!(map_deviation(&[0.4]), 0.0);
    }

    #[test]
    fn deviation_and_summary_agree() {
        for maps in [&[0.2, 0.5, 0.3][..], &[][..], &[0.4][..], &[f64::NAN, 0.1][..]] {
            let direct = map_deviation(maps);
            let via_summary = MapSummary::from_maps(maps).deviation();
            assert!(
                direct == via_summary || (direct.is_nan() && via_summary.is_nan()),
                "{direct} vs {via_summary}"
            );
        }
    }

    #[test]
    fn summary_aggregates() {
        let s = MapSummary::from_maps(&[0.2, 0.4, 0.9]);
        assert_eq!(s.min, 0.2);
        assert_eq!(s.max, 0.9);
        assert!((s.mean - 0.5).abs() < 1e-9);
        assert!((s.deviation() - 0.7).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// AP is always within [0, 1].
        #[test]
        fn ap_is_bounded(spec in proptest::collection::vec((0.0f64..1.0, proptest::bool::ANY), 0..40)) {
            let d: Vec<ScoredDoc> = spec
                .iter()
                .enumerate()
                .map(|(i, &(s, r))| ScoredDoc { score: s, relevant: r, tie_break: i as u32 })
                .collect();
            let ap = average_precision(&d);
            prop_assert!((0.0..=1.0).contains(&ap));
        }

        /// Boosting every relevant score to the top yields AP = 1.
        #[test]
        fn oracle_scores_achieve_one(rels in proptest::collection::vec(proptest::bool::ANY, 1..30)) {
            prop_assume!(rels.iter().any(|&r| r));
            let d: Vec<ScoredDoc> = rels
                .iter()
                .enumerate()
                .map(|(i, &r)| ScoredDoc { score: if r { 1.0 } else { 0.0 }, relevant: r, tie_break: i as u32 })
                .collect();
            prop_assert!((average_precision(&d) - 1.0).abs() < 1e-9);
        }
    }
}
