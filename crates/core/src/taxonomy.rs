//! The taxonomy of representation models (Figure 1 of the paper).
//!
//! Three main categories by how a model handles n-gram order:
//!
//! * **context-agnostic** — topic models: n-gram order is discarded
//!   entirely; the *nonparametric* subcategory (HDP, HLDA) additionally
//!   grows its parameter space with the data;
//! * **local context-aware** — bag models: order *within* an n-gram counts,
//!   order between n-grams does not;
//! * **global context-aware** — n-gram graph models: windowed co-occurrence
//!   edges capture order between n-grams too.
//!
//! The *character-based* subcategory (CN, CNG) cuts across the bag and
//! graph families.

use serde::{Deserialize, Serialize};

use crate::config::ModelFamily;

/// The three main taxonomy categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaxonomyClass {
    /// Topic models.
    ContextAgnostic,
    /// Bag (vector-space) models.
    LocalContextAware,
    /// N-gram graph models.
    GlobalContextAware,
}

impl TaxonomyClass {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TaxonomyClass::ContextAgnostic => "context-agnostic",
            TaxonomyClass::LocalContextAware => "local context-aware",
            TaxonomyClass::GlobalContextAware => "global context-aware",
        }
    }
}

impl ModelFamily {
    /// The model's main taxonomy category (Fig. 1).
    pub fn taxonomy_class(self) -> TaxonomyClass {
        match self {
            ModelFamily::TN | ModelFamily::CN => TaxonomyClass::LocalContextAware,
            ModelFamily::TNG | ModelFamily::CNG => TaxonomyClass::GlobalContextAware,
            ModelFamily::LDA
            | ModelFamily::LLDA
            | ModelFamily::HDP
            | ModelFamily::HLDA
            | ModelFamily::BTM
            | ModelFamily::PLSA => TaxonomyClass::ContextAgnostic,
        }
    }

    /// Whether the model belongs to the nonparametric subcategory.
    pub fn is_nonparametric(self) -> bool {
        matches!(self, ModelFamily::HDP | ModelFamily::HLDA)
    }

    /// Whether the model belongs to the character-based subcategory.
    pub fn is_character_based(self) -> bool {
        matches!(self, ModelFamily::CN | ModelFamily::CNG)
    }

    /// Whether the model is one of the "context-based" models — the
    /// paper's collective term for local + global context-aware (§3.1).
    pub fn is_context_based(self) -> bool {
        self.taxonomy_class() != TaxonomyClass::ContextAgnostic
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_one_classification() {
        assert_eq!(ModelFamily::TN.taxonomy_class(), TaxonomyClass::LocalContextAware);
        assert_eq!(ModelFamily::CN.taxonomy_class(), TaxonomyClass::LocalContextAware);
        assert_eq!(ModelFamily::TNG.taxonomy_class(), TaxonomyClass::GlobalContextAware);
        assert_eq!(ModelFamily::CNG.taxonomy_class(), TaxonomyClass::GlobalContextAware);
        for m in [
            ModelFamily::LDA,
            ModelFamily::LLDA,
            ModelFamily::HDP,
            ModelFamily::HLDA,
            ModelFamily::BTM,
            ModelFamily::PLSA,
        ] {
            assert_eq!(m.taxonomy_class(), TaxonomyClass::ContextAgnostic);
        }
    }

    #[test]
    fn nonparametric_subcategory() {
        assert!(ModelFamily::HDP.is_nonparametric());
        assert!(ModelFamily::HLDA.is_nonparametric());
        assert!(!ModelFamily::LDA.is_nonparametric());
        assert!(!ModelFamily::BTM.is_nonparametric());
    }

    #[test]
    fn character_subcategory_spans_bag_and_graph() {
        assert!(ModelFamily::CN.is_character_based());
        assert!(ModelFamily::CNG.is_character_based());
        assert!(!ModelFamily::TN.is_character_based());
        assert!(!ModelFamily::TNG.is_character_based());
    }

    #[test]
    fn context_based_is_the_union_of_local_and_global() {
        assert!(ModelFamily::TN.is_context_based());
        assert!(ModelFamily::CNG.is_context_based());
        assert!(!ModelFamily::LDA.is_context_based());
    }
}
