//! Train/test splitting (§4).
//!
//! Following Chen et al. 2012 as adopted by the paper: for every user, the
//! 20% most recent of her (feed-)retweets form the positive test documents;
//! the timestamp of the earliest retweet in that sample splits her timeline
//! into a training and a testing phase; for each positive, four negative
//! documents are sampled from the testing phase of her incoming feed. The
//! train set of every representation source is restricted to the tweets of
//! the training phase.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use pmr_sim::{Corpus, Timestamp, TweetId, UserId};

use crate::error::{PmrError, PmrResult};
use crate::source::RepresentationSource;

/// Split parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitConfig {
    /// Fraction of most recent retweets placed in the test set (paper: 0.2).
    pub test_retweet_fraction: f64,
    /// Negatives sampled per positive (paper: 4, from Chen et al. 2012).
    pub negatives_per_positive: usize,
    /// Seed for negative sampling.
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig { test_retweet_fraction: 0.2, negatives_per_positive: 4, seed: 7 }
    }
}

/// One user's split.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UserSplit {
    /// The user.
    pub user: UserId,
    /// Timeline boundary: tweets with `timestamp < split_time` are the
    /// training phase.
    pub split_time: Timestamp,
    /// Positive test documents: the originals the user retweeted in the
    /// testing phase (deduplicated).
    pub positives: Vec<TweetId>,
    /// Negative test documents: testing-phase incoming tweets the user
    /// never retweeted.
    pub negatives: Vec<TweetId>,
}

impl UserSplit {
    /// Positives and negatives together, in a stable (id) order.
    pub fn test_docs(&self) -> Vec<TweetId> {
        let mut all: Vec<TweetId> = self.positives.iter().chain(&self.negatives).copied().collect();
        all.sort();
        all
    }

    /// Whether a test document is a positive.
    pub fn is_positive(&self, id: TweetId) -> bool {
        self.positives.contains(&id)
    }
}

/// The full split over a corpus's evaluated users.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainTestSplit {
    per_user: HashMap<UserId, UserSplit>,
    config: SplitConfig,
}

impl TrainTestSplit {
    /// Compute the split for all evaluated users of a corpus.
    ///
    /// Users without any feed-retweet (nothing to test on) are excluded;
    /// the paper's dataset construction guarantees ≥ 400 retweets per user,
    /// and the simulator's plans guarantee a non-empty sample at every
    /// scale, so exclusions indicate a mis-configured corpus.
    ///
    /// Errors only on a structurally broken corpus (a retweet whose
    /// original is missing) — degenerate users are skipped, not fatal.
    pub fn compute(corpus: &Corpus, config: SplitConfig) -> PmrResult<TrainTestSplit> {
        let mut per_user = HashMap::new();
        for user in corpus.evaluated_user_ids() {
            if let Some(split) = split_user(corpus, user, &config)? {
                per_user.insert(user, split);
            }
        }
        Ok(TrainTestSplit { per_user, config })
    }

    /// The split of one user, if she has a test set.
    pub fn user(&self, user: UserId) -> Option<&UserSplit> {
        self.per_user.get(&user)
    }

    /// Users with a valid split.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        let mut ids: Vec<UserId> = self.per_user.keys().copied().collect();
        ids.sort();
        ids.into_iter()
    }

    /// Every user's split, in ascending user-id order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, &UserSplit)> + '_ {
        let mut pairs: Vec<(UserId, &UserSplit)> =
            self.per_user.iter().map(|(&u, s)| (u, s)).collect();
        pairs.sort_by_key(|(u, _)| *u);
        pairs.into_iter()
    }

    /// Number of users with a valid split.
    pub fn len(&self) -> usize {
        self.per_user.len()
    }

    /// Whether no user has a valid split.
    pub fn is_empty(&self) -> bool {
        self.per_user.is_empty()
    }

    /// The split configuration.
    pub fn config(&self) -> &SplitConfig {
        &self.config
    }

    /// The training document ids of `(user, source)`: the source's tweets
    /// restricted to the training phase, with any test document excluded
    /// (a positive's original may predate the split when the retweet lagged
    /// the original).
    pub fn train_ids(
        &self,
        corpus: &Corpus,
        user: UserId,
        source: RepresentationSource,
    ) -> Vec<TweetId> {
        let Some(split) = self.per_user.get(&user) else {
            return Vec::new();
        };
        let test: HashSet<TweetId> = split.test_docs().into_iter().collect();
        source
            .tweet_ids(corpus, user)
            .into_iter()
            .filter(|&id| corpus.tweet(id).timestamp < split.split_time && !test.contains(&id))
            .collect()
    }

    /// Whether a training document counts as a *positive* example for the
    /// user: her own posts, or feed content she retweeted during the
    /// training phase. Drives the Rocchio aggregation (§3.2).
    pub fn is_positive_train_doc(&self, corpus: &Corpus, user: UserId, id: TweetId) -> bool {
        let tweet = corpus.tweet(id);
        if tweet.author == user {
            return true;
        }
        let Some(split) = self.per_user.get(&user) else {
            return false;
        };
        // Retweeted by the user before the split?
        corpus.retweets_of(user).iter().any(|&rt| {
            let r = corpus.tweet(rt);
            r.timestamp < split.split_time && r.retweet_of == Some(id)
        })
    }
}

/// The original of a retweet, or a [`PmrError::CorpusInvariant`] if the
/// corpus handed us a non-retweet where only retweets may appear.
fn original_of(corpus: &Corpus, user: UserId, rt: TweetId) -> PmrResult<TweetId> {
    corpus.tweet(rt).retweet_of.ok_or_else(|| {
        PmrError::invariant(format!(
            "tweet {} in retweets_of(user {}) is not a retweet",
            rt.0, user.0
        ))
    })
}

fn split_user(corpus: &Corpus, user: UserId, config: &SplitConfig) -> PmrResult<Option<UserSplit>> {
    let followee_set: HashSet<UserId> = corpus.graph.followees(user).iter().copied().collect();
    // Feed-retweets: retweets whose original was authored by a followee —
    // the retweets that correspond to rankable incoming documents.
    let mut feed_retweets: Vec<TweetId> = Vec::new();
    for &rt in corpus.retweets_of(user) {
        let orig = original_of(corpus, user, rt)?;
        if followee_set.contains(&corpus.tweet(orig).author) {
            feed_retweets.push(rt);
        }
    }
    if feed_retweets.is_empty() {
        return Ok(None);
    }
    let base_k = ((feed_retweets.len() as f64 * config.test_retweet_fraction).ceil() as usize)
        .clamp(1, feed_retweets.len());
    // Everything the user ever retweeted is disqualified from being a
    // negative, regardless of phase.
    let mut retweeted_ever: HashSet<TweetId> = HashSet::new();
    for &rt in corpus.retweets_of(user) {
        retweeted_ever.insert(original_of(corpus, user, rt)?);
    }
    let incoming = corpus.incoming_of(user);
    // A user with a tiny feed can land the 20% boundary at the extreme tail
    // of the horizon, leaving a testing phase without a single negative
    // candidate. Widen the retweet sample (pull the boundary earlier) until
    // candidates exist; users whose base sample already works are untouched.
    let found = (base_k..=feed_retweets.len()).find_map(|k| {
        let sample = &feed_retweets[feed_retweets.len() - k..];
        let split_time: Timestamp = sample.iter().map(|&rt| corpus.tweet(rt).timestamp).min()?;
        // Negative candidates: testing-phase incoming items (originals and
        // followee retweets alike — both arrive in the feed) whose content
        // the user never reposted.
        let mut candidates: Vec<TweetId> = incoming
            .iter()
            .copied()
            .filter(|&id| {
                let t = corpus.tweet(id);
                let content = t.retweet_of.unwrap_or(id);
                t.timestamp >= split_time && !retweeted_ever.contains(&content)
            })
            .collect();
        candidates.sort();
        candidates.dedup();
        (!candidates.is_empty()).then_some((sample, split_time, candidates))
    });
    let Some((sample, split_time, mut candidates)) = found else {
        return Ok(None);
    };
    // Keep the paper's "reasonable proportion between the two classes": if
    // the testing phase cannot supply 4 negatives per positive, trim the
    // positive sample to its most recent entries.
    let max_pos =
        (candidates.len() / config.negatives_per_positive.max(1)).max(1).min(sample.len());
    let mut positives: Vec<TweetId> = Vec::new();
    for &rt in sample.iter().rev() {
        let orig = original_of(corpus, user, rt)?;
        if !positives.contains(&orig) {
            positives.push(orig);
        }
        if positives.len() >= max_pos {
            break;
        }
    }
    positives.sort();
    let mut rng = StdRng::seed_from_u64(config.seed ^ (user.0 as u64).wrapping_mul(0x9E37_79B9));
    candidates.shuffle(&mut rng);
    let wanted = positives.len() * config.negatives_per_positive;
    candidates.truncate(wanted);
    candidates.sort();
    Ok(Some(UserSplit { user, split_time, positives, negatives: candidates }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_sim::{generate_corpus, ScalePreset, SimConfig};

    fn setup() -> (Corpus, TrainTestSplit) {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 99));
        let split = TrainTestSplit::compute(&corpus, SplitConfig::default())
            .expect("smoke corpus is well-formed");
        (corpus, split)
    }

    #[test]
    fn nearly_every_evaluated_user_has_a_split() {
        // At smoke scale a handful of tiny-feed users can end up with an
        // empty testing phase (the 20%-most-recent-retweets split lands in
        // the timeline's extreme tail); at the default scale all 60 users
        // split cleanly — the integration suite pins that.
        let (corpus, split) = setup();
        let evaluated = corpus.evaluated_user_ids().count();
        assert!(
            split.len() + 4 >= evaluated,
            "too many users without a test set: {}/{evaluated}",
            split.len()
        );
    }

    #[test]
    fn positives_are_retweeted_followee_originals() {
        let (corpus, split) = setup();
        for u in split.users() {
            let s = split.user(u).unwrap();
            assert!(!s.positives.is_empty());
            let followees: HashSet<UserId> = corpus.graph.followees(u).iter().copied().collect();
            for &p in &s.positives {
                let t = corpus.tweet(p);
                assert!(!t.is_retweet(), "positives are original documents");
                assert!(followees.contains(&t.author), "positives come from the feed");
            }
        }
    }

    #[test]
    fn negatives_are_testing_phase_and_never_retweeted() {
        let (corpus, split) = setup();
        for u in split.users() {
            let s = split.user(u).unwrap();
            let retweeted: HashSet<TweetId> = corpus
                .retweets_of(u)
                .iter()
                .map(|&rt| corpus.tweet(rt).retweet_of.unwrap())
                .collect();
            for &n in &s.negatives {
                assert!(corpus.tweet(n).timestamp >= s.split_time);
                assert!(!retweeted.contains(&n), "negatives were never retweeted");
            }
        }
    }

    #[test]
    fn class_ratio_is_roughly_one_to_four() {
        let (_, split) = setup();
        let mut ok = 0;
        let mut total = 0;
        for u in split.users() {
            let s = split.user(u).unwrap();
            total += 1;
            if s.negatives.len() == s.positives.len() * 4 {
                ok += 1;
            } else {
                // Short only when the testing phase ran out of candidates.
                assert!(s.negatives.len() < s.positives.len() * 4);
            }
        }
        assert!(ok * 10 >= total * 7, "most users should get the full 1:4 ratio: {ok}/{total}");
    }

    #[test]
    fn train_sets_exclude_the_testing_phase_and_test_docs() {
        let (corpus, split) = setup();
        for u in split.users().take(10) {
            let s = split.user(u).unwrap();
            let test: HashSet<TweetId> = s.test_docs().into_iter().collect();
            for src in RepresentationSource::ALL {
                for id in split.train_ids(&corpus, u, src) {
                    assert!(corpus.tweet(id).timestamp < s.split_time, "{src}");
                    assert!(!test.contains(&id), "{src} leaked a test doc into training");
                }
            }
        }
    }

    #[test]
    fn own_documents_are_positive_for_rocchio() {
        let (corpus, split) = setup();
        let u = split.users().next().unwrap();
        let own = split.train_ids(&corpus, u, RepresentationSource::T);
        assert!(!own.is_empty());
        for id in own.iter().take(5) {
            assert!(split.is_positive_train_doc(&corpus, u, *id));
        }
    }

    #[test]
    fn feed_documents_split_into_positive_and_negative() {
        let (corpus, split) = setup();
        let mut saw_positive = false;
        let mut saw_negative = false;
        for u in split.users() {
            for id in split.train_ids(&corpus, u, RepresentationSource::E) {
                if split.is_positive_train_doc(&corpus, u, id) {
                    saw_positive = true;
                } else {
                    saw_negative = true;
                }
            }
            if saw_positive && saw_negative {
                break;
            }
        }
        assert!(saw_positive, "some feed docs were retweeted in the training phase");
        assert!(saw_negative, "most feed docs are not retweeted");
    }

    #[test]
    fn split_is_deterministic() {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 99));
        let a = TrainTestSplit::compute(&corpus, SplitConfig::default()).expect("well-formed");
        let b = TrainTestSplit::compute(&corpus, SplitConfig::default()).expect("well-formed");
        for u in a.users() {
            assert_eq!(a.user(u).unwrap().negatives, b.user(u).unwrap().negatives);
        }
    }
}
