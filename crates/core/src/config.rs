//! The configuration grid of the paper's Tables 4 and 5.
//!
//! Nine representation models were evaluated under 223 distinct parameter
//! configurations, after excluding (a) invalid combinations (JS only with
//! BF weights, GJS only with TF/TF-IDF, BF only with the sum aggregation,
//! Rocchio only with cosine, CN never with TF-IDF) and (b) configurations
//! violating the *memory constraint* (32 GB — which eliminated every PLSA
//! configuration) or the *time constraint* (5 days of TTime — which
//! restricted HLDA to user pooling with 3 levels).
//!
//! The constraints are encoded as explicit rules here, so the grid is
//! reproducible as data: [`ConfigGrid::paper`] yields exactly 223
//! configurations with the per-family counts of the tables
//! (TN 36, CN 21, TNG 9, CNG 9, LDA 48, LLDA 48, BTM 24, HDP 12, HLDA 16).

use serde::{Deserialize, Serialize};

use pmr_bag::{BagSimilarity, WeightingScheme};
use pmr_graph::GraphSimilarity;
use pmr_topics::PoolingScheme;

use crate::source::RepresentationSource;

/// The nine evaluated model families, plus PLSA (excluded by the paper's
/// memory constraint but implemented).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum ModelFamily {
    /// Token n-grams bag model.
    TN,
    /// Character n-grams bag model.
    CN,
    /// Token n-gram graphs.
    TNG,
    /// Character n-gram graphs.
    CNG,
    /// Latent Dirichlet Allocation.
    LDA,
    /// Labeled LDA.
    LLDA,
    /// Biterm Topic Model.
    BTM,
    /// Hierarchical Dirichlet Process.
    HDP,
    /// Hierarchical LDA.
    HLDA,
    /// Probabilistic Latent Semantic Analysis (excluded by the paper).
    PLSA,
}

impl ModelFamily {
    /// The nine families of the paper's experiments, in reporting order.
    pub const EVALUATED: [ModelFamily; 9] = [
        ModelFamily::TN,
        ModelFamily::CN,
        ModelFamily::TNG,
        ModelFamily::CNG,
        ModelFamily::LDA,
        ModelFamily::LLDA,
        ModelFamily::BTM,
        ModelFamily::HDP,
        ModelFamily::HLDA,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelFamily::TN => "TN",
            ModelFamily::CN => "CN",
            ModelFamily::TNG => "TNG",
            ModelFamily::CNG => "CNG",
            ModelFamily::LDA => "LDA",
            ModelFamily::LLDA => "LLDA",
            ModelFamily::BTM => "BTM",
            ModelFamily::HDP => "HDP",
            ModelFamily::HLDA => "HLDA",
            ModelFamily::PLSA => "PLSA",
        }
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Aggregation function selector (parameters live in `pmr-bag`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggKind {
    /// Plain sum.
    Sum,
    /// Centroid of unit vectors.
    Centroid,
    /// Rocchio with the paper's α = 0.8, β = 0.2.
    Rocchio,
}

impl AggKind {
    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Sum => "Sum",
            AggKind::Centroid => "Cen.",
            AggKind::Rocchio => "Ro.",
        }
    }
}

/// One cell of the configuration grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelConfiguration {
    /// Bag model (TN when `char_grams` is false, CN otherwise).
    Bag {
        /// Character-based (CN) or token-based (TN).
        char_grams: bool,
        /// N-gram size.
        n: usize,
        /// Weighting scheme.
        weighting: WeightingScheme,
        /// User-model aggregation.
        aggregation: AggKind,
        /// Similarity measure.
        similarity: BagSimilarity,
    },
    /// N-gram graph model (TNG/CNG).
    Graph {
        /// Character-based (CNG) or token-based (TNG).
        char_grams: bool,
        /// N-gram size (also the co-occurrence window).
        n: usize,
        /// Similarity measure.
        similarity: GraphSimilarity,
    },
    /// LDA (Table 4).
    Lda {
        /// Number of topics.
        topics: usize,
        /// Gibbs iterations (1,000 or 2,000 in the paper).
        iterations: usize,
        /// Pooling scheme.
        pooling: PoolingScheme,
        /// User-model aggregation over inferred distributions.
        aggregation: AggKind,
    },
    /// Labeled LDA (Table 4). `topics` counts the latent topics added to
    /// the observed labels.
    Llda {
        /// Number of latent topics.
        topics: usize,
        /// Gibbs iterations.
        iterations: usize,
        /// Pooling scheme.
        pooling: PoolingScheme,
        /// Aggregation.
        aggregation: AggKind,
    },
    /// BTM (Table 4; 1,000 iterations and window r = 30 are fixed).
    Btm {
        /// Number of topics.
        topics: usize,
        /// Pooling scheme.
        pooling: PoolingScheme,
        /// Aggregation.
        aggregation: AggKind,
    },
    /// HDP (Table 4; α = γ = 1.0 and 1,000 iterations are fixed).
    Hdp {
        /// Topic–word prior (the table's β ∈ {0.1, 0.5}).
        beta: f64,
        /// Pooling scheme.
        pooling: PoolingScheme,
        /// Aggregation.
        aggregation: AggKind,
    },
    /// HLDA (Table 4; user pooling, 3 levels and 1,000 iterations fixed).
    Hlda {
        /// Level prior α ∈ {10, 20}.
        alpha: f64,
        /// Topic–word prior β ∈ {0.1, 0.5}.
        beta: f64,
        /// nCRP concentration γ ∈ {0.5, 1.0}.
        gamma: f64,
        /// Aggregation.
        aggregation: AggKind,
    },
    /// PLSA — excluded by the paper's memory constraint; runnable here.
    Plsa {
        /// Number of topics.
        topics: usize,
        /// EM iterations.
        iterations: usize,
        /// Pooling scheme.
        pooling: PoolingScheme,
        /// Aggregation.
        aggregation: AggKind,
    },
}

impl ModelConfiguration {
    /// The model family of this configuration.
    pub fn family(&self) -> ModelFamily {
        match self {
            ModelConfiguration::Bag { char_grams: false, .. } => ModelFamily::TN,
            ModelConfiguration::Bag { char_grams: true, .. } => ModelFamily::CN,
            ModelConfiguration::Graph { char_grams: false, .. } => ModelFamily::TNG,
            ModelConfiguration::Graph { char_grams: true, .. } => ModelFamily::CNG,
            ModelConfiguration::Lda { .. } => ModelFamily::LDA,
            ModelConfiguration::Llda { .. } => ModelFamily::LLDA,
            ModelConfiguration::Btm { .. } => ModelFamily::BTM,
            ModelConfiguration::Hdp { .. } => ModelFamily::HDP,
            ModelConfiguration::Hlda { .. } => ModelFamily::HLDA,
            ModelConfiguration::Plsa { .. } => ModelFamily::PLSA,
        }
    }

    /// The feature-cache key `(gram kind, n)` for the n-gram families
    /// (bag and graph models); `None` for topic models, which consume the
    /// token stream directly.
    pub fn feature_key(&self) -> Option<(crate::features::GramKind, usize)> {
        match self {
            ModelConfiguration::Bag { char_grams, n, .. }
            | ModelConfiguration::Graph { char_grams, n, .. } => {
                Some((crate::features::GramKind::of(*char_grams), *n))
            }
            _ => None,
        }
    }

    /// The aggregation function, for families that have one (graph models
    /// aggregate with the update operator instead).
    pub fn aggregation(&self) -> Option<AggKind> {
        match self {
            ModelConfiguration::Bag { aggregation, .. }
            | ModelConfiguration::Lda { aggregation, .. }
            | ModelConfiguration::Llda { aggregation, .. }
            | ModelConfiguration::Btm { aggregation, .. }
            | ModelConfiguration::Hdp { aggregation, .. }
            | ModelConfiguration::Hlda { aggregation, .. }
            | ModelConfiguration::Plsa { aggregation, .. } => Some(*aggregation),
            ModelConfiguration::Graph { .. } => None,
        }
    }

    /// Whether the configuration can run on a source: Rocchio needs both
    /// positive and negative examples (§4).
    pub fn valid_for_source(&self, source: RepresentationSource) -> bool {
        match self.aggregation() {
            Some(AggKind::Rocchio) => source.has_negative_examples(),
            _ => true,
        }
    }

    /// A compact human-readable descriptor (used in result tables).
    pub fn describe(&self) -> String {
        match self {
            ModelConfiguration::Bag { n, weighting, aggregation, similarity, .. } => format!(
                "{} n={n} {} {} {}",
                self.family(),
                weighting.name(),
                aggregation.name(),
                similarity.name()
            ),
            ModelConfiguration::Graph { n, similarity, .. } => {
                format!("{} n={n} {}", self.family(), similarity.name())
            }
            ModelConfiguration::Lda { topics, iterations, pooling, aggregation }
            | ModelConfiguration::Llda { topics, iterations, pooling, aggregation }
            | ModelConfiguration::Plsa { topics, iterations, pooling, aggregation } => format!(
                "{} K={topics} it={iterations} {} {}",
                self.family(),
                pooling.name(),
                aggregation.name()
            ),
            ModelConfiguration::Btm { topics, pooling, aggregation } => {
                format!("BTM K={topics} {} {}", pooling.name(), aggregation.name())
            }
            ModelConfiguration::Hdp { beta, pooling, aggregation } => {
                format!("HDP beta={beta} {} {}", pooling.name(), aggregation.name())
            }
            ModelConfiguration::Hlda { alpha, beta, gamma, aggregation } => {
                format!("HLDA a={alpha} b={beta} g={gamma} {}", aggregation.name())
            }
        }
    }
}

/// The full grid of Tables 4 and 5.
#[derive(Debug, Clone, Default)]
pub struct ConfigGrid {
    configs: Vec<ModelConfiguration>,
}

impl ConfigGrid {
    /// The paper's 223 configurations.
    pub fn paper() -> Self {
        let mut configs = Vec::new();
        configs.extend(Self::bag_grid(false)); // TN: 36
        configs.extend(Self::bag_grid(true)); // CN: 21
        configs.extend(Self::graph_grid(false)); // TNG: 9
        configs.extend(Self::graph_grid(true)); // CNG: 9
        configs.extend(Self::lda_grid()); // LDA: 48
        configs.extend(Self::llda_grid()); // LLDA: 48
        configs.extend(Self::btm_grid()); // BTM: 24
        configs.extend(Self::hdp_grid()); // HDP: 12
        configs.extend(Self::hlda_grid()); // HLDA: 16
        ConfigGrid { configs }
    }

    /// The grid including the configurations the paper *excluded* under its
    /// resource constraints (PLSA; here: 48 configurations mirroring LDA's
    /// grid). Useful for ablations on hardware that can afford them.
    pub fn with_excluded() -> Self {
        let mut grid = Self::paper();
        for topics in [50, 100, 150, 200] {
            for iterations in [1_000, 2_000] {
                for pooling in PoolingScheme::ALL {
                    for aggregation in [AggKind::Centroid, AggKind::Rocchio] {
                        grid.configs.push(ModelConfiguration::Plsa {
                            topics,
                            iterations,
                            pooling,
                            aggregation,
                        });
                    }
                }
            }
        }
        grid
    }

    fn bag_grid(char_grams: bool) -> Vec<ModelConfiguration> {
        let ns: &[usize] = if char_grams { &[2, 3, 4] } else { &[1, 2, 3] };
        let weights: &[WeightingScheme] = if char_grams {
            // CN is never combined with TF-IDF (§4).
            &[WeightingScheme::BF, WeightingScheme::TF]
        } else {
            &[WeightingScheme::BF, WeightingScheme::TF, WeightingScheme::TFIDF]
        };
        let mut out = Vec::new();
        for &n in ns {
            for &weighting in weights {
                for aggregation in [AggKind::Sum, AggKind::Centroid, AggKind::Rocchio] {
                    for similarity in [
                        BagSimilarity::Cosine,
                        BagSimilarity::Jaccard,
                        BagSimilarity::GeneralizedJaccard,
                    ] {
                        if !bag_combination_is_valid(weighting, aggregation, similarity) {
                            continue;
                        }
                        out.push(ModelConfiguration::Bag {
                            char_grams,
                            n,
                            weighting,
                            aggregation,
                            similarity,
                        });
                    }
                }
            }
        }
        out
    }

    fn graph_grid(char_grams: bool) -> Vec<ModelConfiguration> {
        let ns: &[usize] = if char_grams { &[2, 3, 4] } else { &[1, 2, 3] };
        let mut out = Vec::new();
        for &n in ns {
            for similarity in [
                GraphSimilarity::Containment,
                GraphSimilarity::Value,
                GraphSimilarity::NormalizedValue,
            ] {
                out.push(ModelConfiguration::Graph { char_grams, n, similarity });
            }
        }
        out
    }

    fn lda_grid() -> Vec<ModelConfiguration> {
        let mut out = Vec::new();
        for topics in [50, 100, 150, 200] {
            for iterations in [1_000, 2_000] {
                for pooling in PoolingScheme::ALL {
                    for aggregation in [AggKind::Centroid, AggKind::Rocchio] {
                        out.push(ModelConfiguration::Lda {
                            topics,
                            iterations,
                            pooling,
                            aggregation,
                        });
                    }
                }
            }
        }
        out
    }

    fn llda_grid() -> Vec<ModelConfiguration> {
        Self::lda_grid()
            .into_iter()
            .map(|c| match c {
                ModelConfiguration::Lda { topics, iterations, pooling, aggregation } => {
                    ModelConfiguration::Llda { topics, iterations, pooling, aggregation }
                }
                _ => unreachable!("lda_grid yields only Lda configurations"),
            })
            .collect()
    }

    fn btm_grid() -> Vec<ModelConfiguration> {
        let mut out = Vec::new();
        for topics in [50, 100, 150, 200] {
            for pooling in PoolingScheme::ALL {
                for aggregation in [AggKind::Centroid, AggKind::Rocchio] {
                    out.push(ModelConfiguration::Btm { topics, pooling, aggregation });
                }
            }
        }
        out
    }

    fn hdp_grid() -> Vec<ModelConfiguration> {
        let mut out = Vec::new();
        for beta in [0.1, 0.5] {
            for pooling in PoolingScheme::ALL {
                for aggregation in [AggKind::Centroid, AggKind::Rocchio] {
                    out.push(ModelConfiguration::Hdp { beta, pooling, aggregation });
                }
            }
        }
        out
    }

    fn hlda_grid() -> Vec<ModelConfiguration> {
        // Time constraint: only user pooling, only 3 levels (§4); the grid
        // varies α, β, γ and the aggregation.
        let mut out = Vec::new();
        for alpha in [10.0, 20.0] {
            for beta in [0.1, 0.5] {
                for gamma in [0.5, 1.0] {
                    for aggregation in [AggKind::Centroid, AggKind::Rocchio] {
                        out.push(ModelConfiguration::Hlda { alpha, beta, gamma, aggregation });
                    }
                }
            }
        }
        out
    }

    /// Build a grid from an explicit configuration list (ad-hoc sweeps and
    /// ablations).
    pub fn from_configs(configs: Vec<ModelConfiguration>) -> Self {
        ConfigGrid { configs }
    }

    /// All configurations.
    pub fn configs(&self) -> &[ModelConfiguration] {
        &self.configs
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// The configurations of one family.
    pub fn family(&self, family: ModelFamily) -> Vec<&ModelConfiguration> {
        self.configs.iter().filter(|c| c.family() == family).collect()
    }

    /// The configurations valid for a source.
    pub fn valid_for(&self, source: RepresentationSource) -> Vec<&ModelConfiguration> {
        self.configs.iter().filter(|c| c.valid_for_source(source)).collect()
    }
}

/// The validity rules of §4 for bag-model combinations.
fn bag_combination_is_valid(
    weighting: WeightingScheme,
    aggregation: AggKind,
    similarity: BagSimilarity,
) -> bool {
    // JS is applied only with BF weights; GJS only with TF and TF-IDF.
    match similarity {
        BagSimilarity::Jaccard if weighting != WeightingScheme::BF => return false,
        BagSimilarity::GeneralizedJaccard if weighting == WeightingScheme::BF => return false,
        _ => {}
    }
    // BF is exclusively coupled with the sum aggregation.
    if weighting == WeightingScheme::BF && aggregation != AggKind::Sum {
        return false;
    }
    // Rocchio is used only with the cosine similarity (and TF/TF-IDF).
    if aggregation == AggKind::Rocchio
        && (similarity != BagSimilarity::Cosine || weighting == WeightingScheme::BF)
    {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grid_has_exactly_223_configurations() {
        assert_eq!(ConfigGrid::paper().len(), 223);
    }

    #[test]
    fn per_family_counts_match_tables_4_and_5() {
        let grid = ConfigGrid::paper();
        let count = |f: ModelFamily| grid.family(f).len();
        assert_eq!(count(ModelFamily::TN), 36);
        assert_eq!(count(ModelFamily::CN), 21);
        assert_eq!(count(ModelFamily::TNG), 9);
        assert_eq!(count(ModelFamily::CNG), 9);
        assert_eq!(count(ModelFamily::LDA), 48);
        assert_eq!(count(ModelFamily::LLDA), 48);
        assert_eq!(count(ModelFamily::BTM), 24);
        assert_eq!(count(ModelFamily::HDP), 12);
        assert_eq!(count(ModelFamily::HLDA), 16);
        assert_eq!(count(ModelFamily::PLSA), 0, "PLSA is excluded by the memory rule");
    }

    #[test]
    fn plsa_appears_only_in_the_extended_grid() {
        let grid = ConfigGrid::with_excluded();
        assert_eq!(grid.family(ModelFamily::PLSA).len(), 48);
        assert_eq!(grid.len(), 223 + 48);
    }

    #[test]
    fn no_invalid_bag_combinations_survive() {
        let grid = ConfigGrid::paper();
        for c in grid.configs() {
            if let ModelConfiguration::Bag {
                char_grams, weighting, aggregation, similarity, ..
            } = c
            {
                assert!(bag_combination_is_valid(*weighting, *aggregation, *similarity), "{c:?}");
                if *char_grams {
                    assert_ne!(*weighting, WeightingScheme::TFIDF, "CN never uses TF-IDF");
                }
            }
        }
    }

    #[test]
    fn hlda_is_restricted_by_the_time_constraint() {
        let grid = ConfigGrid::paper();
        // All HLDA configurations implicitly use UP/3 levels — the enum has
        // no pooling/levels field to mis-set, which *is* the constraint.
        assert_eq!(grid.family(ModelFamily::HLDA).len(), 16);
    }

    #[test]
    fn rocchio_requires_negative_examples() {
        let grid = ConfigGrid::paper();
        let r_valid = grid.valid_for(RepresentationSource::R).len();
        let e_valid = grid.valid_for(RepresentationSource::E).len();
        assert!(r_valid < e_valid, "R admits no Rocchio configs, E admits all");
        assert_eq!(e_valid, 223);
        // Rocchio rows: TN 6 (3 n × 2 weights), CN 3, LDA/LLDA 24 each,
        // BTM 12, HDP 6, HLDA 8 → 83 excluded for R.
        assert_eq!(r_valid, 223 - 83);
    }

    #[test]
    fn descriptors_are_unique() {
        let grid = ConfigGrid::paper();
        let set: std::collections::HashSet<String> =
            grid.configs().iter().map(|c| c.describe()).collect();
        assert_eq!(set.len(), grid.len(), "every configuration must describe uniquely");
    }
}
