//! The experiment runner: sweeps configurations × sources × user groups and
//! aggregates everything the paper's figures and tables report.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use pmr_sim::usertype::{partition_users, Partition, UserGroup};
use pmr_sim::UserId;

use crate::baseline::{chronological_ap, random_ap};
use crate::config::{ConfigGrid, ModelConfiguration, ModelFamily};
use crate::eval::{mean_average_precision, MapSummary};
use crate::prepare::PreparedCorpus;
use crate::recommender::{score_configuration, ScoreOutcome, ScoringOptions};
use crate::source::RepresentationSource;
use crate::timing::TimeStats;

/// Options for a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunnerOptions {
    /// Scoring knobs (iteration scaling, seeds).
    pub scoring: ScoringOptions,
    /// Random-baseline orderings per user (the paper uses 1,000).
    pub ran_iterations: usize,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions { scoring: ScoringOptions::default(), ran_iterations: 1_000 }
    }
}

/// One `(configuration, source, group)` measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigResult {
    /// The configuration (full parameters).
    pub config: ModelConfiguration,
    /// Its family.
    pub family: ModelFamily,
    /// The representation source.
    pub source: RepresentationSource,
    /// The user group.
    pub group: UserGroup,
    /// Mean Average Precision over the group.
    pub map: f64,
    /// Per-user APs (ordered by user id).
    pub per_user_ap: Vec<(UserId, f64)>,
    /// Aggregate model-building time.
    pub train_time: Duration,
    /// Aggregate scoring time.
    pub test_time: Duration,
}

/// All measurements of a sweep.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepResult {
    /// Individual measurements.
    pub results: Vec<ConfigResult>,
}

impl SweepResult {
    /// The measurements of `(family, source, group)`.
    pub fn select(
        &self,
        family: ModelFamily,
        source: RepresentationSource,
        group: UserGroup,
    ) -> Vec<&ConfigResult> {
        self.results
            .iter()
            .filter(|r| r.family == family && r.source == source && r.group == group)
            .collect()
    }

    /// Min/mean/max MAP of a family on a source over its configurations —
    /// one bar triple of Figures 3–6.
    pub fn map_summary(
        &self,
        family: ModelFamily,
        source: RepresentationSource,
        group: UserGroup,
    ) -> MapSummary {
        let maps: Vec<f64> = self.select(family, source, group).iter().map(|r| r.map).collect();
        MapSummary::from_maps(&maps)
    }

    /// Min/mean/max MAP of a *source* over every configuration of every
    /// family — one cell triple of Table 6.
    pub fn source_summary(&self, source: RepresentationSource, group: UserGroup) -> MapSummary {
        let maps: Vec<f64> = self
            .results
            .iter()
            .filter(|r| r.source == source && r.group == group)
            .map(|r| r.map)
            .collect();
        MapSummary::from_maps(&maps)
    }

    /// The best configuration of a family on a source (averaged across the
    /// requested group) — one cell of Table 7.
    pub fn best_config(
        &self,
        family: ModelFamily,
        source: RepresentationSource,
        group: UserGroup,
    ) -> Option<&ConfigResult> {
        self.select(family, source, group).into_iter().max_by(|a, b| a.map.total_cmp(&b.map))
    }

    /// TTime statistics of a family across all its measurements (Fig. 7i).
    pub fn train_time_stats(&self, family: ModelFamily) -> TimeStats {
        let ds: Vec<Duration> =
            self.results.iter().filter(|r| r.family == family).map(|r| r.train_time).collect();
        TimeStats::from_durations(&ds)
    }

    /// ETime statistics of a family across all its measurements (Fig. 7ii).
    pub fn test_time_stats(&self, family: ModelFamily) -> TimeStats {
        let ds: Vec<Duration> =
            self.results.iter().filter(|r| r.family == family).map(|r| r.test_time).collect();
        TimeStats::from_durations(&ds)
    }

    /// Merge another sweep's measurements into this one.
    pub fn merge(&mut self, other: SweepResult) {
        self.results.extend(other.results);
    }
}

/// Drives sweeps over a prepared corpus.
#[derive(Debug)]
pub struct ExperimentRunner<'a> {
    prepared: &'a PreparedCorpus,
    partition: Partition,
}

impl<'a> ExperimentRunner<'a> {
    /// Partition the corpus's users and set up the runner.
    pub fn new(prepared: &'a PreparedCorpus) -> Self {
        let partition = partition_users(&prepared.corpus);
        ExperimentRunner { prepared, partition }
    }

    /// The measured user partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The prepared corpus.
    pub fn prepared(&self) -> &PreparedCorpus {
        self.prepared
    }

    /// The members of a group that have a valid train/test split.
    pub fn group_users(&self, group: UserGroup) -> Vec<UserId> {
        self.partition
            .members(group)
            .into_iter()
            .filter(|&u| self.prepared.split.user(u).is_some())
            .collect()
    }

    /// Score one `(configuration, source)` pair on a group.
    pub fn run(
        &self,
        config: &ModelConfiguration,
        source: RepresentationSource,
        group: UserGroup,
        opts: &RunnerOptions,
    ) -> ConfigResult {
        let users = self.group_users(group);
        let outcome: ScoreOutcome =
            score_configuration(self.prepared, config, source, &users, &opts.scoring);
        let aps: Vec<f64> = outcome.per_user.iter().map(|r| r.ap).collect();
        // Per-phase observability: fold each run's measured train/test time
        // into per-family histograms and journal the run (no-ops unless a
        // recorder is installed).
        let family = config.family();
        let train_us = u64::try_from(outcome.train_time.as_micros()).unwrap_or(u64::MAX);
        let test_us = u64::try_from(outcome.test_time.as_micros()).unwrap_or(u64::MAX);
        pmr_obs::observe_duration(&format!("run.train.{}", family.name()), outcome.train_time);
        pmr_obs::observe_duration(&format!("run.test.{}", family.name()), outcome.test_time);
        pmr_obs::event(
            "run",
            "run_complete",
            &[
                ("family", family.name().into()),
                ("source", source.name().into()),
                ("group", group.name().into()),
                ("users", users.len().into()),
                ("train_us", train_us.into()),
                ("test_us", test_us.into()),
            ],
        );
        ConfigResult {
            config: config.clone(),
            family: config.family(),
            source,
            group,
            map: mean_average_precision(&aps),
            per_user_ap: outcome.per_user.iter().map(|r| (r.user, r.ap)).collect(),
            train_time: outcome.train_time,
            test_time: outcome.test_time,
        }
    }

    /// Sweep a grid over sources for one group, fanning the runs across the
    /// machine's available parallelism. Equivalent to
    /// [`sweep_jobs`](Self::sweep_jobs) with the default worker count.
    pub fn sweep(
        &self,
        grid: &ConfigGrid,
        sources: &[RepresentationSource],
        group: UserGroup,
        opts: &RunnerOptions,
    ) -> SweepResult {
        self.sweep_jobs(grid, sources, group, opts, crate::executor::default_jobs())
    }

    /// Sweep a grid over sources for one group on a pool of `jobs` worker
    /// threads. Results are returned in canonical (source, config-index)
    /// order — the same order the sequential nested loop would produce — so
    /// the `SweepResult` is identical regardless of `jobs` or scheduling
    /// (up to the wall-clock `train_time`/`test_time` fields).
    pub fn sweep_jobs(
        &self,
        grid: &ConfigGrid,
        sources: &[RepresentationSource],
        group: UserGroup,
        opts: &RunnerOptions,
        jobs: usize,
    ) -> SweepResult {
        let tasks: Vec<(RepresentationSource, &ModelConfiguration)> = sources
            .iter()
            .flat_map(|&source| {
                grid.valid_for(source).into_iter().map(move |config| (source, config))
            })
            .collect();
        let _span = pmr_obs::span("sweep");
        pmr_obs::counter_add("sweep.runs", tasks.len() as u64);
        // Build every shared gram table up front so the first worker of
        // each (kind, n) does not pay the build while its peers wait.
        self.prepared.prewarm_features(tasks.iter().map(|&(_, config)| config));
        let _inner = crate::executor::inner_threads_for_jobs(jobs);
        let results = crate::executor::run_tasks(tasks, jobs, |_, (source, config)| {
            self.run(config, source, group, opts)
        });
        SweepResult { results }
    }

    /// The chronological baseline's MAP for a group.
    pub fn chronological_map(&self, group: UserGroup) -> f64 {
        let aps: Vec<f64> = self
            .group_users(group)
            .into_iter()
            .filter_map(|u| self.prepared.split.user(u))
            .map(|s| chronological_ap(&self.prepared.corpus, s))
            .collect();
        mean_average_precision(&aps)
    }

    /// The random baseline's MAP for a group.
    pub fn random_map(&self, group: UserGroup, opts: &RunnerOptions) -> f64 {
        let aps: Vec<f64> = self
            .group_users(group)
            .into_iter()
            .filter_map(|u| self.prepared.split.user(u))
            .map(|s| random_ap(s, opts.ran_iterations, opts.scoring.seed))
            .collect();
        mean_average_precision(&aps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitConfig;
    use pmr_bag::{BagSimilarity, WeightingScheme};
    use pmr_graph::GraphSimilarity;
    use pmr_sim::{generate_corpus, ScalePreset, SimConfig};
    use pmr_topics::PoolingScheme;

    fn prepared() -> PreparedCorpus {
        let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 99));
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("smoke corpus is well-formed")
    }

    fn quick_opts() -> RunnerOptions {
        RunnerOptions {
            scoring: ScoringOptions {
                iteration_scale: 0.01,
                infer_iterations: 5,
                seed: 13,
                ..ScoringOptions::default()
            },
            ran_iterations: 100,
        }
    }

    fn tn_config() -> ModelConfiguration {
        ModelConfiguration::Bag {
            char_grams: false,
            n: 1,
            weighting: WeightingScheme::TFIDF,
            aggregation: crate::config::AggKind::Centroid,
            similarity: BagSimilarity::Cosine,
        }
    }

    #[test]
    fn tn_beats_the_random_baseline_on_retweets() {
        let p = prepared();
        let runner = ExperimentRunner::new(&p);
        let opts = quick_opts();
        let result = runner.run(&tn_config(), RepresentationSource::R, UserGroup::All, &opts);
        let ran = runner.random_map(UserGroup::All, &opts);
        assert!(
            result.map > ran + 0.1,
            "content-based TN must clearly beat random: {} vs {}",
            result.map,
            ran
        );
    }

    #[test]
    fn tng_beats_the_random_baseline_on_retweets() {
        let p = prepared();
        let runner = ExperimentRunner::new(&p);
        let opts = quick_opts();
        // n = 1: bigram-edge graphs, the graph configuration the synthetic
        // corpus supplies order information for (see tests/paper_shapes.rs).
        let cfg = ModelConfiguration::Graph {
            char_grams: false,
            n: 1,
            similarity: GraphSimilarity::Value,
        };
        let result = runner.run(&cfg, RepresentationSource::R, UserGroup::All, &opts);
        let ran = runner.random_map(UserGroup::All, &opts);
        assert!(result.map > ran + 0.1, "TNG vs random: {} vs {}", result.map, ran);
    }

    #[test]
    fn lda_scores_run_and_bound() {
        let p = prepared();
        let runner = ExperimentRunner::new(&p);
        let opts = quick_opts();
        let cfg = ModelConfiguration::Lda {
            topics: 20,
            iterations: 1_000,
            pooling: PoolingScheme::UP,
            aggregation: crate::config::AggKind::Centroid,
        };
        let result = runner.run(&cfg, RepresentationSource::R, UserGroup::All, &opts);
        assert!((0.0..=1.0).contains(&result.map));
        assert!(!result.per_user_ap.is_empty());
    }

    #[test]
    fn chronological_baseline_is_weak() {
        let p = prepared();
        let runner = ExperimentRunner::new(&p);
        let opts = quick_opts();
        let chr = runner.chronological_map(UserGroup::All);
        let ran = runner.random_map(UserGroup::All, &opts);
        // The paper finds CHR below RAN; our simulator assigns retweet
        // decisions content-wise, so recency carries no signal either.
        assert!((0.0..=1.0).contains(&chr));
        assert!(chr < ran + 0.15, "CHR should not dominate RAN: {chr} vs {ran}");
    }

    #[test]
    fn sweep_covers_grid_times_sources() {
        let p = prepared();
        let runner = ExperimentRunner::new(&p);
        let opts = quick_opts();
        // A miniature grid: both graph families, one config each.
        let mut grid = ConfigGrid::default();
        grid_push(
            &mut grid,
            ModelConfiguration::Graph {
                char_grams: false,
                n: 2,
                similarity: GraphSimilarity::Value,
            },
        );
        grid_push(&mut grid, tn_config());
        let sources = [RepresentationSource::R, RepresentationSource::T];
        let sweep = runner.sweep(&grid, &sources, UserGroup::IP, &opts);
        assert_eq!(sweep.results.len(), 4);
        let summary = sweep.map_summary(ModelFamily::TNG, RepresentationSource::R, UserGroup::IP);
        assert!(summary.max >= summary.min);
        assert!(sweep
            .best_config(ModelFamily::TN, RepresentationSource::R, UserGroup::IP)
            .is_some());
        assert!(sweep.train_time_stats(ModelFamily::TN).max > Duration::ZERO);
    }

    /// Test-only helper to assemble ad-hoc grids.
    fn grid_push(grid: &mut ConfigGrid, config: ModelConfiguration) {
        // ConfigGrid is intentionally append-only through its constructors;
        // tests use a serde round-trip-free backdoor via merge on sweeps
        // instead. For grid assembly we just rebuild from parts.
        let mut configs: Vec<ModelConfiguration> = grid.configs().to_vec();
        configs.push(config);
        *grid = ConfigGrid::from_configs(configs);
    }
}
