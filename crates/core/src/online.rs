//! Online user modeling: incremental updates for a deployed recommender.
//!
//! The paper's evaluation is batch (train once, rank once), but its stated
//! purpose is fine-tuning models "for use in real recommender systems" (§1).
//! A deployed system cannot refit on every retweet; this module maintains a
//! user model *incrementally*:
//!
//! * the **bag** variant keeps an exponentially-decayed centroid of unit
//!   document vectors — the centroid aggregation of §3.2 with a recency
//!   half-life, reducing to the plain centroid when decay is 1;
//! * the **graph** variant reuses the n-gram graphs' update operator, which
//!   is already incremental by construction (its learning factor
//!   `1/(k+1)` is the running-average schedule).
//!
//! Both variants score candidates with the same similarity measures as the
//! batch models, so an online model converges to its batch counterpart on a
//! static stream.

use pmr_bag::{BagSimilarity, BagVectorizer, SparseVector};
use pmr_graph::{GraphSimilarity, GraphSpace, NGramGraph};
use serde::{Deserialize, Serialize};

/// The vectorizer-free core of an online bag model: an exponentially
/// decayed sum of unit document vectors.
///
/// Extracted from [`OnlineBagModel`] so a serving engine with one *shared*
/// feature space (`pmr_bag::IndexedVectorizer`) can keep a profile per user
/// without cloning a vectorizer into each of them; the caller supplies
/// already-transformed, unit-normalized vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineProfile {
    /// Decay multiplier applied to the accumulated model before each
    /// update; 1.0 = no forgetting (running centroid up to scale).
    decay: f32,
    accumulated: SparseVector,
    documents: usize,
}

impl OnlineProfile {
    /// Start an empty profile.
    ///
    /// `decay` ∈ (0, 1]: the weight multiplier applied to history per
    /// update. With decay `d`, a document observed `k` updates ago carries
    /// relative weight `d^k` — a half-life of `ln 2 / ln(1/d)` updates.
    pub fn new(decay: f32) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        OnlineProfile { decay, accumulated: SparseVector::new(), documents: 0 }
    }

    /// Apply one forgetting step without observing anything — the decay
    /// half of [`Self::observe_unit`], exposed for the incremental-model
    /// trait's `decay_step`.
    pub fn decay_step(&mut self) {
        self.accumulated.scale(self.decay);
    }

    /// Fold one observed document's *unit-normalized* vector into the
    /// profile: one decay step, then the new document at full weight.
    pub fn observe_unit(&mut self, unit: &SparseVector) {
        self.decay_step();
        self.accumulated.add_scaled(unit, 1.0);
        self.documents += 1;
    }

    /// The decay multiplier.
    pub fn decay(&self) -> f32 {
        self.decay
    }

    /// Number of observed documents.
    pub fn documents(&self) -> usize {
        self.documents
    }

    /// The current (unnormalized) model vector.
    pub fn vector(&self) -> &SparseVector {
        &self.accumulated
    }
}

/// An incrementally-updated bag user model over a fixed vectorizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineBagModel {
    vectorizer: BagVectorizer,
    similarity: BagSimilarity,
    profile: OnlineProfile,
}

impl OnlineBagModel {
    /// Start an empty model over a fitted vectorizer.
    ///
    /// `decay` ∈ (0, 1]; see [`OnlineProfile::new`].
    pub fn new(vectorizer: BagVectorizer, similarity: BagSimilarity, decay: f32) -> Self {
        OnlineBagModel { vectorizer, similarity, profile: OnlineProfile::new(decay) }
    }

    /// Fold one observed document (its n-gram list) into the model.
    pub fn observe<S: AsRef<str>>(&mut self, grams: &[S]) {
        let v = self.vectorizer.transform(grams).normalized();
        self.profile.observe_unit(&v);
    }

    /// Score a candidate document against the current model.
    ///
    /// The candidate is unit-normalized exactly like every observed
    /// document, so both sides of the comparison live at the same scale.
    /// Cosine is scale-invariant and never noticed, but the Jaccard-family
    /// measures are magnitude-sensitive: an unnormalized candidate would
    /// make a document's self-similarity depend on its raw norm.
    pub fn score<S: AsRef<str>>(&self, grams: &[S]) -> f64 {
        let v = self.vectorizer.transform(grams).normalized();
        self.similarity.compare(self.profile.vector(), &v)
    }

    /// Apply one forgetting step without observing anything.
    pub fn decay_step(&mut self) {
        self.profile.decay_step();
    }

    /// Number of observed documents.
    pub fn documents(&self) -> usize {
        self.profile.documents()
    }

    /// The current (unnormalized) model vector.
    pub fn model(&self) -> &SparseVector {
        self.profile.vector()
    }

    /// The similarity the model scores under.
    pub fn similarity(&self) -> BagSimilarity {
        self.similarity
    }
}

/// An incrementally-updated n-gram graph user model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineGraphModel {
    space: GraphSpace,
    similarity: GraphSimilarity,
    window: usize,
    user: NGramGraph,
}

impl OnlineGraphModel {
    /// Start an empty model. `window` is the co-occurrence window (= n).
    pub fn new(similarity: GraphSimilarity, window: usize) -> Self {
        OnlineGraphModel { space: GraphSpace::new(), similarity, window, user: NGramGraph::new() }
    }

    /// Fold one observed document into the model via the update operator.
    pub fn observe<S: AsRef<str>>(&mut self, grams: &[S]) {
        let g = self.space.graph_from_grams(grams, self.window);
        self.user.merge(&g);
    }

    /// Score a candidate document against the current model.
    pub fn score<S: AsRef<str>>(&mut self, grams: &[S]) -> f64 {
        let g = self.space.graph_from_grams(grams, self.window);
        self.similarity.compare(&self.user, &g)
    }

    /// Number of observed documents.
    pub fn documents(&self) -> usize {
        self.user.merged_docs()
    }

    /// Sorted, deduplicated surface forms of the user graph's nodes — the
    /// key set a serving window's postings are gated on. A candidate
    /// sharing no node gram with the model cannot share an edge either, so
    /// its score is exactly 0.0 and may be zero-filled without scoring.
    pub fn node_terms(&self) -> Vec<String> {
        let mut terms: Vec<&str> = Vec::new();
        for (a, b, _) in self.user.edges() {
            terms.push(self.space.gram(a));
            terms.push(self.space.gram(b));
        }
        terms.sort_unstable();
        terms.dedup();
        terms.into_iter().map(str::to_owned).collect()
    }

    /// Build (and intern) a candidate's graph exactly as [`Self::score`]
    /// does, but skip the comparison, returning the exact `0.0` it would
    /// produce. The serving engine calls this for gated-out candidates so
    /// the space's interning sequence — and therefore every later score's
    /// bits — stays identical to the exhaustive path.
    pub fn intern_only<S: AsRef<str>>(&mut self, grams: &[S]) -> f64 {
        let _g = self.space.graph_from_grams(grams, self.window);
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmr_bag::{AggregationFunction, WeightingScheme};

    fn docs() -> Vec<Vec<String>> {
        let d = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        vec![d("cats purr softly"), d("cats nap often"), d("rust code compiles")]
    }

    #[test]
    fn online_centroid_matches_batch_centroid_without_decay() {
        let train = docs();
        let vectorizer = BagVectorizer::fit(WeightingScheme::TF, train.iter());
        let mut online = OnlineBagModel::new(vectorizer.clone(), BagSimilarity::Cosine, 1.0);
        for d in &train {
            online.observe(d);
        }
        let vectors: Vec<SparseVector> = train.iter().map(|d| vectorizer.transform(d)).collect();
        let batch = AggregationFunction::Centroid.aggregate(&vectors, &[]);
        // Online accumulates the *sum* of unit vectors; the centroid divides
        // by |D| — a scale factor cosine ignores.
        let probe = vec!["cats".to_owned(), "purr".to_owned()];
        let online_score = online.score(&probe);
        let batch_score = BagSimilarity::Cosine.compare(&batch, &vectorizer.transform(&probe));
        assert!((online_score - batch_score).abs() < 1e-6);
    }

    #[test]
    fn decay_forgets_old_interests() {
        let train = docs();
        let vectorizer = BagVectorizer::fit(WeightingScheme::TF, train.iter());
        let mut fast_forget = OnlineBagModel::new(vectorizer.clone(), BagSimilarity::Cosine, 0.2);
        let mut no_forget = OnlineBagModel::new(vectorizer, BagSimilarity::Cosine, 1.0);
        // Old interest: cats. New interest: rust.
        let seq = ["cats purr softly", "cats nap often", "rust code compiles"];
        for s in seq {
            let grams: Vec<String> = s.split_whitespace().map(str::to_owned).collect();
            fast_forget.observe(&grams);
            no_forget.observe(&grams);
        }
        let cats = vec!["cats".to_owned(), "purr".to_owned()];
        assert!(
            fast_forget.score(&cats) < no_forget.score(&cats),
            "decayed model must care less about stale interests"
        );
    }

    #[test]
    fn online_graph_tracks_observed_content() {
        let mut model = OnlineGraphModel::new(GraphSimilarity::Value, 2);
        for d in docs() {
            model.observe(&d);
        }
        assert_eq!(model.documents(), 3);
        let seen: Vec<String> = "cats purr softly".split_whitespace().map(str::to_owned).collect();
        let unseen: Vec<String> =
            "quantum flux capacitor".split_whitespace().map(str::to_owned).collect();
        assert!(model.score(&seen) > model.score(&unseen));
        assert_eq!(model.score(&unseen), 0.0);
    }

    #[test]
    fn gated_graph_scoring_matches_exhaustive_bit_for_bit() {
        // The serving engine's retrieval gate: candidates sharing no node
        // gram with the model take `intern_only` (score 0.0 without the
        // comparison). That must (a) equal the exhaustive score exactly
        // and (b) leave the interning sequence — and therefore every
        // *later* score's bits — identical to the exhaustive path.
        let mut exhaustive = OnlineGraphModel::new(GraphSimilarity::Value, 2);
        for d in docs() {
            exhaustive.observe(&d);
        }
        let mut gated = exhaustive.clone();
        let nodes = gated.node_terms();
        let unseen: Vec<String> =
            "quantum flux capacitor".split_whitespace().map(str::to_owned).collect();
        assert!(
            !unseen.iter().any(|g| nodes.binary_search(g).is_ok()),
            "probe must be outside the gate for this test to bite"
        );
        assert_eq!(gated.intern_only(&unseen).to_bits(), exhaustive.score(&unseen).to_bits());
        let seen: Vec<String> = "cats purr softly".split_whitespace().map(str::to_owned).collect();
        assert_eq!(
            gated.score(&seen).to_bits(),
            exhaustive.score(&seen).to_bits(),
            "post-gate scores must not drift: interning order diverged"
        );
    }

    #[test]
    fn generalized_jaccard_self_similarity_is_one() {
        // With the candidate normalized like the observations, one observed
        // document compared against itself is a comparison of identical
        // unit vectors — self-similarity 1 for the Jaccard family, which
        // the old unnormalized-candidate path violated.
        let vectorizer = BagVectorizer::fit(WeightingScheme::TF, docs().iter());
        let mut online = OnlineBagModel::new(vectorizer, BagSimilarity::GeneralizedJaccard, 1.0);
        let d: Vec<String> = "cats purr softly".split_whitespace().map(str::to_owned).collect();
        online.observe(&d);
        let s = online.score(&d);
        assert!((s - 1.0).abs() < 1e-6, "self-similarity must be 1, got {s}");
    }

    #[test]
    fn online_graph_converges_to_batch_on_a_static_stream() {
        let train = docs();
        let mut online = OnlineGraphModel::new(GraphSimilarity::Value, 2);
        for d in &train {
            online.observe(d);
        }
        // The batch counterpart: merge every document graph over a shared
        // space in one pass, exactly as the batch recommender builds its
        // user graphs.
        let mut space = GraphSpace::new();
        let mut batch = NGramGraph::new();
        for d in &train {
            let g = space.graph_from_grams(d, 2);
            batch.merge(&g);
        }
        for probe in ["cats purr softly", "rust code compiles", "cats nap rust"] {
            let grams: Vec<String> = probe.split_whitespace().map(str::to_owned).collect();
            let got = online.score(&grams);
            let g = space.graph_from_grams(&grams, 2);
            let want = GraphSimilarity::Value.compare(&batch, &g);
            assert!(
                (got - want).abs() < 1e-9,
                "online ({got}) and batch ({want}) scores diverge on {probe:?}"
            );
        }
    }

    #[test]
    fn empty_models_score_zero() {
        let vectorizer = BagVectorizer::fit(WeightingScheme::TF, docs().iter());
        let online = OnlineBagModel::new(vectorizer, BagSimilarity::Cosine, 1.0);
        assert_eq!(online.score(&["cats".to_owned()]), 0.0);
        assert_eq!(online.documents(), 0);
    }

    #[test]
    #[should_panic(expected = "decay must be in (0, 1]")]
    fn zero_decay_is_rejected() {
        let vectorizer = BagVectorizer::fit(WeightingScheme::TF, docs().iter());
        let _ = OnlineBagModel::new(vectorizer, BagSimilarity::Cosine, 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use pmr_bag::{AggregationFunction, WeightingScheme};
    use proptest::prelude::*;

    fn arb_doc() -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec("[a-f]{1,3}", 1..10)
    }

    proptest! {
        /// The bag counterpart of the graph convergence test: with decay 1
        /// the online model is the *sum* of unit document vectors, the
        /// batch centroid is their *mean* — a scale factor cosine ignores,
        /// so both must induce the same candidate ranking on any static
        /// stream.
        #[test]
        fn undecayed_online_bag_ranks_like_the_batch_centroid(
            train in proptest::collection::vec(arb_doc(), 1..8),
            probes in proptest::collection::vec(arb_doc(), 2..6),
        ) {
            let vectorizer = BagVectorizer::fit(WeightingScheme::TF, train.iter());
            let mut online = OnlineBagModel::new(vectorizer.clone(), BagSimilarity::Cosine, 1.0);
            for d in &train {
                online.observe(d);
            }
            let vectors: Vec<SparseVector> =
                train.iter().map(|d| vectorizer.transform(d)).collect();
            let batch = AggregationFunction::Centroid.aggregate(&vectors, &[]);
            let online_scores: Vec<f64> = probes.iter().map(|p| online.score(p)).collect();
            let batch_scores: Vec<f64> = probes
                .iter()
                .map(|p| {
                    BagSimilarity::Cosine
                        .compare(&batch, &vectorizer.transform(p).normalized())
                })
                .collect();
            for (o, b) in online_scores.iter().zip(&batch_scores) {
                prop_assert!((o - b).abs() < 1e-6, "scores diverge: online {o}, batch {b}");
            }
            // Whenever batch separates two probes beyond float noise, the
            // online model must order them identically.
            for i in 0..probes.len() {
                for j in 0..probes.len() {
                    if batch_scores[i] > batch_scores[j] + 1e-6 {
                        prop_assert!(
                            online_scores[i] > online_scores[j],
                            "ranking flip between probes {i} and {j}: \
                             online ({}, {}) vs batch ({}, {})",
                            online_scores[i], online_scores[j],
                            batch_scores[i], batch_scores[j]
                        );
                    }
                }
            }
        }
    }
}
