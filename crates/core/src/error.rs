//! The shared typed error of the framework.
//!
//! Library code in this workspace must not panic (`pmr-lint`'s
//! `lib-unwrap` rule enforces it): a degenerate synthetic user, a corrupted
//! cache or a malformed corpus is an *input* problem the caller decides how
//! to handle, not a programming error worth tearing the sweep down for.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Everything that can go wrong preparing or evaluating a corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PmrError {
    /// A structural invariant of the corpus did not hold (e.g. a retweet
    /// without an original). Indicates a mis-built or corrupted corpus.
    CorpusInvariant {
        /// What was violated, with enough context to locate it.
        detail: String,
    },
    /// A user's timeline is too degenerate to derive the requested
    /// artifact from (e.g. an empty retweet sample where the split
    /// guarantees one).
    DegenerateUser {
        /// The offending user id.
        user: u32,
        /// What made the timeline unusable.
        detail: String,
    },
    /// Serialization of a result artifact failed.
    Serialize {
        /// The serializer's message.
        detail: String,
    },
    /// A serving-engine worker died mid-stream (a panic in a shard), so
    /// the engine can no longer answer queries or snapshot barriers.
    EngineAborted {
        /// Which worker died and why, as far as the engine could tell.
        detail: String,
    },
}

impl PmrError {
    /// Shorthand for a [`PmrError::CorpusInvariant`].
    pub fn invariant(detail: impl Into<String>) -> PmrError {
        PmrError::CorpusInvariant { detail: detail.into() }
    }
}

impl fmt::Display for PmrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmrError::CorpusInvariant { detail } => {
                write!(f, "corpus invariant violated: {detail}")
            }
            PmrError::DegenerateUser { user, detail } => {
                write!(f, "user {user} has a degenerate timeline: {detail}")
            }
            PmrError::Serialize { detail } => write!(f, "serialization failed: {detail}"),
            PmrError::EngineAborted { detail } => {
                write!(f, "serving engine aborted: {detail}")
            }
        }
    }
}

impl std::error::Error for PmrError {}

/// The framework's result alias.
pub type PmrResult<T> = Result<T, PmrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = PmrError::invariant("retweet 42 points at nothing");
        assert_eq!(e.to_string(), "corpus invariant violated: retweet 42 points at nothing");
        let e = PmrError::DegenerateUser { user: 7, detail: "no feed retweets".into() };
        assert!(e.to_string().contains("user 7"));
    }

    #[test]
    fn errors_round_trip_through_serde() {
        let e = PmrError::DegenerateUser { user: 3, detail: "x".into() };
        let json = serde_json::to_string(&e).expect("serializable");
        let back: PmrError = serde_json::from_str(&json).expect("deserializable");
        assert_eq!(e, back);
    }
}
