//! Micro-benchmarks of the representation-model building blocks: the
//! per-operation costs behind the paper's Figure 7 time ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pmr_bag::{BagSimilarity, BagVectorizer, WeightingScheme};
use pmr_graph::{GraphSimilarity, GraphSpace, NGramGraph};
use pmr_text::{char_ngrams, token_ngrams, Tokenizer};
use pmr_topics::{BtmConfig, BtmModel, LdaConfig, LdaModel, TopicCorpus};

/// A deterministic pseudo-tweet corpus for the micro-benches.
fn sample_texts(n: usize) -> Vec<String> {
    let words = [
        "rust", "borrow", "checker", "tweet", "graph", "topic", "model", "ranking", "cosine",
        "sparse", "vector", "gibbs", "sample", "corpus", "retweet", "follow", "user", "feed",
    ];
    (0..n)
        .map(|i| {
            (0..12).map(|j| words[(i * 7 + j * 13) % words.len()]).collect::<Vec<_>>().join(" ")
        })
        .collect()
}

fn bench_tokenizer(c: &mut Criterion) {
    let tokenizer = Tokenizer::default();
    let texts = sample_texts(200);
    c.bench_function("tokenize_200_tweets", |b| {
        b.iter(|| {
            let mut total = 0;
            for t in &texts {
                total += tokenizer.tokenize(t).len();
            }
            total
        })
    });
}

fn bench_ngrams(c: &mut Criterion) {
    let texts = sample_texts(100);
    let tokens: Vec<Vec<String>> =
        texts.iter().map(|t| t.split_whitespace().map(str::to_owned).collect()).collect();
    let mut group = c.benchmark_group("ngram_extraction");
    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("char", n), &n, |b, &n| {
            b.iter(|| texts.iter().map(|t| char_ngrams(t, n).len()).sum::<usize>())
        });
        group.bench_with_input(BenchmarkId::new("token", n), &n, |b, &n| {
            b.iter(|| tokens.iter().map(|t| token_ngrams(t, n).len()).sum::<usize>())
        });
    }
    group.finish();
}

fn bench_bag(c: &mut Criterion) {
    let texts = sample_texts(150);
    let docs: Vec<Vec<String>> =
        texts.iter().map(|t| t.split_whitespace().map(str::to_owned).collect()).collect();
    c.bench_function("bag_fit_150_docs", |b| {
        b.iter(|| BagVectorizer::fit(WeightingScheme::TFIDF, docs.iter()))
    });
    let vectorizer = BagVectorizer::fit(WeightingScheme::TFIDF, docs.iter());
    let va = vectorizer.transform(&docs[0]);
    let vb = vectorizer.transform(&docs[1]);
    let mut group = c.benchmark_group("bag_similarity");
    for sim in [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard] {
        group.bench_function(sim.name(), |b| b.iter(|| sim.compare(&va, &vb)));
    }
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let texts = sample_texts(150);
    let docs: Vec<Vec<String>> =
        texts.iter().map(|t| t.split_whitespace().map(str::to_owned).collect()).collect();
    c.bench_function("graph_build_and_merge_150_docs", |b| {
        b.iter(|| {
            let mut space = GraphSpace::new();
            let mut user = NGramGraph::new();
            for d in &docs {
                let grams = token_ngrams(d, 3);
                let g = space.graph_from_grams(&grams, 3);
                user.merge(&g);
            }
            user.size()
        })
    });
    let mut space = GraphSpace::new();
    let mut user = NGramGraph::new();
    for d in &docs {
        let grams = token_ngrams(d, 3);
        user.merge(&space.graph_from_grams(&grams, 3));
    }
    let probe = space.graph_from_grams(&token_ngrams(&docs[0], 3), 3);
    let mut group = c.benchmark_group("graph_similarity");
    for sim in
        [GraphSimilarity::Containment, GraphSimilarity::Value, GraphSimilarity::NormalizedValue]
    {
        group.bench_function(sim.name(), |b| b.iter(|| sim.compare(&user, &probe)));
    }
    group.finish();
}

fn bench_topics(c: &mut Criterion) {
    let texts = sample_texts(120);
    let docs: Vec<Vec<String>> =
        texts.iter().map(|t| t.split_whitespace().map(str::to_owned).collect()).collect();
    let corpus = TopicCorpus::from_token_docs(&docs);
    let mut group = c.benchmark_group("topic_training");
    group.sample_size(10);
    group.bench_function("lda_k20_it20", |b| {
        b.iter(|| LdaModel::train(&LdaConfig::paper(20, 20, 1), &corpus))
    });
    group.bench_function("btm_k20_it20", |b| {
        let mut cfg = BtmConfig::paper(20, 20, 1);
        cfg.window = 30;
        b.iter(|| BtmModel::train(&cfg, &corpus))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tokenizer, bench_ngrams, bench_bag, bench_graph, bench_topics
}
criterion_main!(benches);
