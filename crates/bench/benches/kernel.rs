//! Micro-benchmarks of the sweep hot path before/after the shared feature
//! cache and indexed scoring kernel: gram extraction (per-call strings vs
//! cached `TermId` lookups), vectorization (string interning vs id
//! remapping) and model–document scoring (merge-join reference vs
//! pre-expanded kernel). `bench_kernel` (a bin) runs the same comparisons
//! and writes `results/BENCH_kernel.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pmr_bag::{
    AggregationFunction, BagSimilarity, BagVectorizer, IndexedVectorizer, ScoringKernel,
    SparseVector, WeightingScheme,
};
use pmr_core::{GramKind, GramTable};
use pmr_text::{char_ngrams, token_ngrams};

/// A deterministic pseudo-tweet corpus for the micro-benches.
fn sample_texts(n: usize) -> Vec<String> {
    let words = [
        "rust", "borrow", "checker", "tweet", "graph", "topic", "model", "ranking", "cosine",
        "sparse", "vector", "gibbs", "sample", "corpus", "retweet", "follow", "user", "feed",
    ];
    (0..n)
        .map(|i| {
            (0..12).map(|j| words[(i * 7 + j * 13) % words.len()]).collect::<Vec<_>>().join(" ")
        })
        .collect()
}

fn token_docs(texts: &[String]) -> Vec<Vec<String>> {
    texts.iter().map(|t| t.split_whitespace().map(str::to_owned).collect()).collect()
}

fn bench_gram_extraction(c: &mut Criterion) {
    let texts = sample_texts(200);
    let tokens = token_docs(&texts);
    let char_table =
        GramTable::from_docs(GramKind::Char, 3, texts.iter().map(|t| char_ngrams(t, 3)));
    let token_table =
        GramTable::from_docs(GramKind::Token, 2, tokens.iter().map(|t| token_ngrams(t, 2)));
    let mut group = c.benchmark_group("gram_extraction");
    group.bench_function("char3_per_call", |b| {
        b.iter(|| texts.iter().map(|t| char_ngrams(&t.to_lowercase(), 3).len()).sum::<usize>())
    });
    group.bench_function("char3_cached", |b| {
        b.iter(|| {
            (0..texts.len())
                .map(|i| char_table.doc(pmr_sim::TweetId(i as u32)).len())
                .sum::<usize>()
        })
    });
    group.bench_function("token2_per_call", |b| {
        b.iter(|| tokens.iter().map(|t| token_ngrams(t, 2).len()).sum::<usize>())
    });
    group.bench_function("token2_cached", |b| {
        b.iter(|| {
            (0..tokens.len())
                .map(|i| token_table.doc(pmr_sim::TweetId(i as u32)).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_vectorize(c: &mut Criterion) {
    let texts = sample_texts(150);
    let string_docs: Vec<Vec<String>> =
        texts.iter().map(|t| char_ngrams(&t.to_lowercase(), 3)).collect();
    let table = GramTable::from_docs(GramKind::Char, 3, string_docs.iter());
    let id_docs: Vec<&[u32]> =
        (0..texts.len()).map(|i| table.doc(pmr_sim::TweetId(i as u32))).collect();
    let by_string = BagVectorizer::fit(WeightingScheme::TFIDF, string_docs.iter());
    let by_id = IndexedVectorizer::fit(WeightingScheme::TFIDF, id_docs.iter());
    let mut group = c.benchmark_group("vectorize");
    group.bench_function("fit_strings", |b| {
        b.iter(|| BagVectorizer::fit(WeightingScheme::TFIDF, string_docs.iter()).dimensionality())
    });
    group.bench_function("fit_indexed", |b| {
        b.iter(|| IndexedVectorizer::fit(WeightingScheme::TFIDF, id_docs.iter()).dimensionality())
    });
    group.bench_function("transform_strings", |b| {
        b.iter(|| string_docs.iter().map(|d| by_string.transform(d).nnz()).sum::<usize>())
    });
    group.bench_function("transform_indexed", |b| {
        b.iter(|| id_docs.iter().map(|d| by_id.transform(d).nnz()).sum::<usize>())
    });
    group.finish();
}

/// A large aggregated user model plus small test docs — the asymmetry the
/// kernel exploits (O(nnz(doc)) beats O(nnz(model) + nnz(doc)) exactly when
/// the model is much denser than the documents).
fn model_and_docs() -> (SparseVector, Vec<SparseVector>) {
    let texts = sample_texts(400);
    let grams: Vec<Vec<String>> = texts.iter().map(|t| char_ngrams(&t.to_lowercase(), 3)).collect();
    let vectorizer = BagVectorizer::fit(WeightingScheme::TF, grams.iter());
    let vectors: Vec<SparseVector> = grams.iter().map(|g| vectorizer.transform(g)).collect();
    let model = AggregationFunction::Sum.aggregate(&vectors, &[]);
    (model, vectors.into_iter().take(100).collect())
}

fn bench_scoring(c: &mut Criterion) {
    let (model, docs) = model_and_docs();
    let mut group = c.benchmark_group("scoring_100_docs");
    for sim in [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard] {
        group.bench_with_input(BenchmarkId::new("merge_join", sim.name()), &sim, |b, &sim| {
            b.iter(|| docs.iter().map(|d| sim.compare(&model, d)).sum::<f64>())
        });
        group.bench_with_input(BenchmarkId::new("kernel", sim.name()), &sim, |b, &sim| {
            let kernel = ScoringKernel::new(sim, &model);
            b.iter(|| docs.iter().map(|d| kernel.score(d)).sum::<f64>())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_gram_extraction, bench_vectorize, bench_scoring
}
criterion_main!(benches);
