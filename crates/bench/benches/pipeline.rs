//! End-to-end pipeline benchmarks: corpus generation, preprocessing and
//! whole-configuration scoring — the units that dominate a sweep's wall
//! clock.

use criterion::{criterion_group, criterion_main, Criterion};

use pmr_bag::{BagSimilarity, WeightingScheme};
use pmr_core::config::AggKind;
use pmr_core::recommender::{score_configuration, ScoringOptions};
use pmr_core::{ModelConfiguration, PreparedCorpus, RepresentationSource, SplitConfig};
use pmr_graph::GraphSimilarity;
use pmr_sim::{generate_corpus, ScalePreset, SimConfig, UserId};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.bench_function("generate_smoke", |b| {
        b.iter(|| generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 5)).len())
    });
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 5));
    group.bench_function("prepare_smoke", |b| {
        b.iter(|| {
            PreparedCorpus::new(corpus.clone(), SplitConfig::default())
                .expect("well-formed")
                .split
                .len()
        })
    });
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let corpus = generate_corpus(&SimConfig::preset(ScalePreset::Smoke, 5));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    let users: Vec<UserId> = prepared.split.users().collect();
    let opts = ScoringOptions {
        iteration_scale: 0.01,
        infer_iterations: 5,
        seed: 1,
        ..ScoringOptions::default()
    };
    let mut group = c.benchmark_group("score_configuration");
    group.sample_size(10);
    group.bench_function("tn_tfidf_on_R", |b| {
        let cfg = ModelConfiguration::Bag {
            char_grams: false,
            n: 1,
            weighting: WeightingScheme::TFIDF,
            aggregation: AggKind::Centroid,
            similarity: BagSimilarity::Cosine,
        };
        b.iter(|| {
            score_configuration(&prepared, &cfg, RepresentationSource::R, &users, &opts)
                .per_user
                .len()
        })
    });
    group.bench_function("tng_n3_on_R", |b| {
        let cfg = ModelConfiguration::Graph {
            char_grams: false,
            n: 3,
            similarity: GraphSimilarity::Value,
        };
        b.iter(|| {
            score_configuration(&prepared, &cfg, RepresentationSource::R, &users, &opts)
                .per_user
                .len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_generation, bench_scoring
}
criterion_main!(benches);
