//! # pmr-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! EDBT 2019 study from the simulated corpus:
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `run_sweep` | the full 223-configuration × 13-source sweep (cached as JSON; every other binary reuses it) |
//! | `table2_dataset_stats` | Table 2 — dataset statistics per user group |
//! | `table3_languages` | Table 3 — the ten most frequent languages |
//! | `tables45_config_grid` | Tables 4 & 5 — the configuration grid |
//! | `fig3_6_effectiveness` | Figures 3–6 — min/mean/max MAP of the 9 models × 8 sources per user group, with CHR/RAN baselines |
//! | `table6_sources` | Table 6 — min/mean/max MAP of all 13 sources × 4 user types |
//! | `fig7_time` | Figure 7 — TTime and ETime per model |
//! | `table7_best_configs` | Table 7 — the best configuration per model × source |
//! | `bench_retrieval` | `BENCH_retrieval.json` — impact-ordered index (WAND) speedup and recall@k vs. exhaustive scoring; a diagnostic baseline, not a paper figure |
//!
//! A sweep measures each `(configuration, source)` pair once over all 60
//! users and stores per-user APs; group-level MAPs (All/IS/BU/IP) are
//! derived from those — valid because the paper, too, trains topic models
//! on the train sets of *all* users and context models per user.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod harness;

pub use harness::{HarnessOptions, Scale, SweepCache};
