//! Shared harness plumbing: CLI options, the sweep cache, table rendering.

use std::collections::{BTreeMap, HashSet};
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use pmr_core::eval::MapSummary;
use pmr_core::executor::{self, Progress};
use pmr_core::experiment::{ConfigResult, ExperimentRunner, RunnerOptions, SweepResult};
use pmr_core::recommender::ScoringOptions;
use pmr_core::retrieval::RetrievalMode;
use pmr_core::split::SplitConfig;
use pmr_core::{
    ConfigGrid, ModelFamily, PmrError, PmrResult, PreparedCorpus, RepresentationSource,
};
use pmr_sim::usertype::UserGroup;
use pmr_sim::{generate_corpus, ScalePreset, SimConfig, UserId};

/// Corpus/experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny corpus, heavily scaled-down sampler iterations (~minutes).
    Smoke,
    /// The documented default (EXPERIMENTS.md records this scale).
    Default,
    /// Approaches the paper's magnitudes. Hours to days.
    Full,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Lower-case name (cache-file key).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }

    /// The simulator preset for this scale.
    pub fn preset(self) -> ScalePreset {
        match self {
            Scale::Smoke => ScalePreset::Smoke,
            Scale::Default => ScalePreset::Default,
            Scale::Full => ScalePreset::Full,
        }
    }

    /// The default Gibbs/EM iteration multiplier (relative to the paper's
    /// 1,000–2,000 sweeps) — the corpus is a simulator, not a 32-core Xeon
    /// running for 5 days, so the harness trades sampler convergence for
    /// tractability while keeping every configuration distinct.
    pub fn iteration_scale(self) -> f64 {
        match self {
            Scale::Smoke => 0.015,
            Scale::Default => 0.03,
            Scale::Full => 1.0,
        }
    }
}

/// Parsed harness options (shared by every experiment binary).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HarnessOptions {
    /// Corpus scale.
    pub scale: Scale,
    /// Corpus seed.
    pub seed: u64,
    /// Gibbs/EM iteration multiplier (defaults per scale).
    pub iteration_scale: f64,
    /// Restrict the sweep to these families (empty = all nine).
    pub families: Vec<ModelFamily>,
    /// Restrict the sweep to these sources (empty = all thirteen).
    pub sources: Vec<RepresentationSource>,
    /// Output/cache directory.
    pub out_dir: PathBuf,
    /// User group filter for figure binaries.
    pub group: Option<UserGroup>,
    /// Sweep worker threads (defaults to the available parallelism).
    pub jobs: usize,
    /// JSONL event journal path (`--journal`); `None` disables journaling.
    pub journal: Option<PathBuf>,
    /// Metrics summary path (`--metrics-out`); `None` disables the summary.
    pub metrics_out: Option<PathBuf>,
    /// Candidate retrieval mode for the bag/graph scoring arms
    /// (`--retrieval`). Both modes produce byte-identical sweep output (the
    /// sweep's WAND path runs at full coverage); `wand` skips work that
    /// provably cannot change a score.
    pub retrieval: RetrievalMode,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: Scale::Smoke,
            seed: 42,
            iteration_scale: Scale::Smoke.iteration_scale(),
            families: Vec::new(),
            sources: Vec::new(),
            out_dir: PathBuf::from("results"),
            group: None,
            jobs: executor::default_jobs(),
            journal: None,
            metrics_out: None,
            retrieval: RetrievalMode::Exhaustive,
        }
    }
}

impl HarnessOptions {
    /// Parse `--flag value` style arguments; unknown flags abort with usage.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> HarnessOptions {
        let mut opts = HarnessOptions::default();
        let mut explicit_iter_scale = false;
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> String {
                it.next().unwrap_or_else(|| usage(&format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--scale" => {
                    let v = value("--scale");
                    opts.scale =
                        Scale::parse(&v).unwrap_or_else(|| usage(&format!("bad scale {v}")));
                }
                "--seed" => {
                    opts.seed = value("--seed").parse().unwrap_or_else(|_| usage("bad seed"));
                }
                "--iter-scale" => {
                    opts.iteration_scale =
                        value("--iter-scale").parse().unwrap_or_else(|_| usage("bad iter-scale"));
                    explicit_iter_scale = true;
                }
                "--families" => {
                    opts.families = value("--families")
                        .split(',')
                        .map(|f| {
                            parse_family(f).unwrap_or_else(|| usage(&format!("bad family {f}")))
                        })
                        .collect();
                }
                "--sources" => {
                    let v = value("--sources");
                    opts.sources = match v.as_str() {
                        "all" => RepresentationSource::ALL.to_vec(),
                        "figures" => RepresentationSource::FIGURES.to_vec(),
                        list => list
                            .split(',')
                            .map(|s| {
                                parse_source(s).unwrap_or_else(|| usage(&format!("bad source {s}")))
                            })
                            .collect(),
                    };
                }
                "--out" => opts.out_dir = PathBuf::from(value("--out")),
                "--group" => {
                    let v = value("--group");
                    opts.group = Some(match v.as_str() {
                        "all" => UserGroup::All,
                        "is" => UserGroup::IS,
                        "bu" => UserGroup::BU,
                        "ip" => UserGroup::IP,
                        _ => usage(&format!("bad group {v}")),
                    });
                }
                "--jobs" => {
                    opts.jobs = value("--jobs")
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .unwrap_or_else(|| usage("bad jobs (want an integer >= 1)"));
                }
                "--journal" => opts.journal = Some(PathBuf::from(value("--journal"))),
                "--metrics-out" => {
                    opts.metrics_out = Some(PathBuf::from(value("--metrics-out")));
                }
                "--retrieval" => {
                    opts.retrieval =
                        value("--retrieval").parse().unwrap_or_else(|e: String| usage(&e));
                }
                "--help" | "-h" => usage("help requested"),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if !explicit_iter_scale {
            opts.iteration_scale = opts.scale.iteration_scale();
        }
        opts
    }

    /// Parse from the process arguments.
    pub fn from_env() -> HarnessOptions {
        HarnessOptions::parse(std::env::args().skip(1))
    }

    /// The simulator configuration for these options.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::preset(self.scale.preset(), self.seed)
    }

    /// The scoring/runner options for these options.
    pub fn runner_options(&self) -> RunnerOptions {
        RunnerOptions {
            scoring: ScoringOptions {
                iteration_scale: self.iteration_scale,
                infer_iterations: 8,
                seed: self.seed,
                retrieval: self.retrieval,
            },
            ran_iterations: 1_000,
        }
    }

    /// The sweep's cache path for these options.
    pub fn sweep_path(&self) -> PathBuf {
        self.out_dir.join(format!("sweep_{}_{}.json", self.scale.name(), self.seed))
    }

    /// The family filter in canonical form: sorted, deduplicated names.
    /// Empty means the full grid.
    pub fn family_filter_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.families.iter().map(|f| f.name().to_owned()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// The effective source list (an empty filter means all thirteen), in
    /// sweep order. Order matters: it determines the canonical ordering of
    /// the sweep's measurements.
    pub fn effective_sources(&self) -> Vec<RepresentationSource> {
        if self.sources.is_empty() {
            RepresentationSource::ALL.to_vec()
        } else {
            self.sources.clone()
        }
    }

    /// Names of [`Self::effective_sources`].
    pub fn effective_source_names(&self) -> Vec<String> {
        self.effective_sources().iter().map(|s| s.name().to_owned()).collect()
    }

    /// Generate and prepare the corpus. Fails only when the generated
    /// corpus violates a structural invariant — a simulator bug, not a
    /// configuration problem.
    pub fn prepare_corpus(&self) -> PmrResult<PreparedCorpus> {
        let _span = pmr_obs::span("corpus_prep");
        let corpus = generate_corpus(&self.sim_config());
        PreparedCorpus::new(corpus, SplitConfig::default())
    }

    /// Install the global observability recorder when `--journal` or
    /// `--metrics-out` asks for it. With neither flag this is a no-op: no
    /// recorder is installed, every instrumentation site stays a single
    /// atomic load, and the sweep's output is byte-identical to an
    /// uninstrumented build. Returns whether a recorder was installed.
    pub fn install_observability(&self) -> bool {
        if self.journal.is_none() && self.metrics_out.is_none() {
            return false;
        }
        let mut recorder = pmr_obs::Recorder::monotonic();
        if let Some(path) = &self.journal {
            match pmr_obs::Journal::create(path) {
                Ok(journal) => {
                    eprintln!("journaling events to {}", path.display());
                    recorder = recorder.with_journal(journal);
                }
                Err(e) => eprintln!("could not create journal {}: {e}", path.display()),
            }
        }
        pmr_obs::install(recorder);
        true
    }

    /// Write the `--metrics-out` summary (if requested) and tear the
    /// recorder down, flushing the journal. Safe to call without a prior
    /// [`Self::install_observability`].
    pub fn finish_observability(&self) {
        if let Some(path) = &self.metrics_out {
            if let Some(snapshot) = pmr_obs::snapshot() {
                match serde_json::to_string_pretty(&snapshot) {
                    Ok(json) => {
                        if let Some(dir) = path.parent() {
                            if !dir.as_os_str().is_empty() {
                                let _ = std::fs::create_dir_all(dir);
                            }
                        }
                        match std::fs::write(path, json) {
                            Ok(()) => eprintln!("wrote metrics summary to {}", path.display()),
                            Err(e) => {
                                eprintln!("could not write metrics {}: {e}", path.display());
                            }
                        }
                    }
                    Err(e) => eprintln!("could not serialize metrics: {e}"),
                }
            }
        }
        pmr_obs::uninstall();
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: <bin> [--scale smoke|default|full] [--seed N] [--iter-scale F]\n\
         \x20      [--families TN,CN,...] [--sources all|figures|R,T,...]\n\
         \x20      [--out DIR] [--group all|is|bu|ip] [--jobs N]\n\
         \x20      [--journal PATH] [--metrics-out PATH]\n\
         \x20      [--retrieval exhaustive|wand]\n\
         \n\
         --jobs N fans the sweep across N worker threads (default: all\n\
         cores); results are identical for every N.\n\
         --journal PATH writes a JSONL event journal (diagnostic only;\n\
         excluded from determinism comparisons). --metrics-out PATH writes\n\
         a metrics summary (counters, gauges, duration histograms).\n\
         --retrieval wand shortlists candidates through the impact-ordered\n\
         index before exact rescoring; sweep output is byte-identical to\n\
         the exhaustive default."
    );
    std::process::exit(2);
}

fn parse_family(s: &str) -> Option<ModelFamily> {
    match s.to_ascii_uppercase().as_str() {
        "TN" => Some(ModelFamily::TN),
        "CN" => Some(ModelFamily::CN),
        "TNG" => Some(ModelFamily::TNG),
        "CNG" => Some(ModelFamily::CNG),
        "LDA" => Some(ModelFamily::LDA),
        "LLDA" => Some(ModelFamily::LLDA),
        "BTM" => Some(ModelFamily::BTM),
        "HDP" => Some(ModelFamily::HDP),
        "HLDA" => Some(ModelFamily::HLDA),
        "PLSA" => Some(ModelFamily::PLSA),
        _ => None,
    }
}

fn parse_source(s: &str) -> Option<RepresentationSource> {
    RepresentationSource::ALL.into_iter().find(|src| src.name().eq_ignore_ascii_case(s))
}

/// A persisted sweep: measurements over All Users plus the group membership
/// and baselines needed to derive every figure and table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCache {
    /// Scale name the sweep ran at.
    pub scale: String,
    /// Corpus seed.
    pub seed: u64,
    /// Iteration multiplier used.
    pub iteration_scale: f64,
    /// Family filter the sweep ran with, as sorted names (empty = full
    /// grid). Caches produced under a filter must not masquerade as full
    /// sweeps, so this is validated on load.
    pub families: Vec<String>,
    /// The effective representation sources, in sweep order.
    pub sources: Vec<String>,
    /// Retrieval mode the sweep ran with. Both modes produce byte-identical
    /// measurements, but the timing fields are not comparable across modes,
    /// so a cache never stands in for the other mode's run. Caches that
    /// predate the field fail to parse and are discarded, like any other
    /// pre-metadata cache.
    pub retrieval: String,
    /// Group name → member user ids (only users with a valid split).
    pub groups: BTreeMap<String, Vec<u32>>,
    /// Group name → (CHR MAP, RAN MAP).
    pub baselines: BTreeMap<String, (f64, f64)>,
    /// The raw measurements (group field is always All Users).
    pub sweep: SweepResult,
}

impl SweepCache {
    /// Load the cached sweep for `opts`, or run it (and cache it). A cache
    /// produced under different options (scale, seed, iteration scale, or
    /// family/source filters) is never reused — it is re-run with a stderr
    /// note instead, so a filtered smoke sweep can't silently stand in for
    /// the full grid.
    pub fn load_or_run(opts: &HarnessOptions) -> PmrResult<SweepCache> {
        let path = opts.sweep_path();
        if let Some(cache) = Self::load_if_valid(opts) {
            return Ok(cache);
        }
        let cache = Self::run(opts)?;
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let bytes = serde_json::to_vec(&cache)
            .map_err(|e| PmrError::Serialize { detail: e.to_string() })?;
        match std::fs::write(&path, bytes) {
            Ok(()) => {
                eprintln!("cached sweep at {}", path.display());
                pmr_obs::counter_add("sweep_cache.stored", 1);
                pmr_obs::event("cache", "stored", &[("path", path.display().to_string().into())]);
            }
            Err(e) => eprintln!("could not cache sweep: {e}"),
        }
        Ok(cache)
    }

    /// Load the cached sweep for `opts` if it exists, parses, and was
    /// produced under the same options; otherwise explain on stderr and
    /// return `None`. Pre-metadata caches (without the `families`/`sources`
    /// fields) fail to parse and are discarded.
    pub fn load_if_valid(opts: &HarnessOptions) -> Option<SweepCache> {
        let path = opts.sweep_path();
        let shown = path.display().to_string();
        let Ok(bytes) = std::fs::read(&path) else {
            pmr_obs::counter_add("sweep_cache.miss", 1);
            pmr_obs::event("cache", "miss", &[("path", shown.as_str().into())]);
            return None;
        };
        match serde_json::from_slice::<SweepCache>(&bytes) {
            Ok(cache) => match cache.matches(opts) {
                Ok(()) => {
                    eprintln!("loaded cached sweep from {shown}");
                    pmr_obs::counter_add("sweep_cache.hit", 1);
                    pmr_obs::event("cache", "hit", &[("path", shown.as_str().into())]);
                    Some(cache)
                }
                Err(why) => {
                    eprintln!(
                        "cached sweep {shown} was produced under different options \
                         ({why}); re-running"
                    );
                    pmr_obs::counter_add("sweep_cache.invalidated", 1);
                    pmr_obs::event(
                        "cache",
                        "invalidated",
                        &[("path", shown.as_str().into()), ("why", why.as_str().into())],
                    );
                    None
                }
            },
            Err(e) => {
                eprintln!("ignoring unreadable cache {shown}: {e}");
                pmr_obs::counter_add("sweep_cache.unreadable", 1);
                pmr_obs::event(
                    "cache",
                    "unreadable",
                    &[("path", shown.as_str().into()), ("error", e.to_string().into())],
                );
                None
            }
        }
    }

    /// Check that this cache was produced under `opts`; the error names the
    /// first mismatching option.
    pub fn matches(&self, opts: &HarnessOptions) -> Result<(), String> {
        if self.scale != opts.scale.name() {
            return Err(format!("scale {} vs requested {}", self.scale, opts.scale.name()));
        }
        if self.seed != opts.seed {
            return Err(format!("seed {} vs requested {}", self.seed, opts.seed));
        }
        if self.iteration_scale != opts.iteration_scale {
            return Err(format!(
                "iter-scale {} vs requested {}",
                self.iteration_scale, opts.iteration_scale
            ));
        }
        let families = opts.family_filter_names();
        if self.families != families {
            return Err(format!(
                "family filter [{}] vs requested [{}] (empty = full grid)",
                self.families.join(","),
                families.join(",")
            ));
        }
        let sources = opts.effective_source_names();
        if self.sources != sources {
            return Err(format!(
                "sources [{}] vs requested [{}]",
                self.sources.join(","),
                sources.join(",")
            ));
        }
        if self.retrieval != opts.retrieval.name() {
            return Err(format!(
                "retrieval {} vs requested {}",
                self.retrieval,
                opts.retrieval.name()
            ));
        }
        Ok(())
    }

    /// Run the sweep for `opts` without touching the cache, fanning the
    /// runs across `opts.jobs` worker threads. The task list is laid out in
    /// canonical (source, config-index) order and the executor restores
    /// that order on collection, so the resulting cache JSON is identical
    /// for every `--jobs` value (wall-clock timing fields aside).
    pub fn run(opts: &HarnessOptions) -> PmrResult<SweepCache> {
        let prepared = opts.prepare_corpus()?;
        let runner = ExperimentRunner::new(&prepared);
        let runner_opts = opts.runner_options();
        let grid = ConfigGrid::paper();
        let sources = opts.effective_sources();
        let configs: Vec<_> = grid
            .configs()
            .iter()
            .filter(|c| opts.families.is_empty() || opts.families.contains(&c.family()))
            .collect();
        let tasks: Vec<(RepresentationSource, &pmr_core::ModelConfiguration)> = sources
            .iter()
            .flat_map(|&source| {
                configs
                    .iter()
                    .filter(move |c| c.valid_for_source(source))
                    .map(move |&c| (source, c))
            })
            .collect();
        let total = tasks.len();
        let jobs = opts.jobs.clamp(1, total.max(1));
        let _span = pmr_obs::span("sweep");
        pmr_obs::counter_add("sweep.runs", total as u64);
        eprintln!(
            "sweep: {} configs × {} sources = {total} runs at scale {} \
             (iter-scale {}, jobs {jobs})",
            configs.len(),
            sources.len(),
            opts.scale.name(),
            opts.iteration_scale
        );
        let progress = Progress::new(total, 25);
        // Build the shared gram tables before fanning out (same tables
        // either way; this just keeps workers from queueing on the first
        // build of each key).
        prepared.prewarm_features(tasks.iter().map(|&(_, config)| config));
        // Keep jobs × inner-threads ≈ n_cpu while the pool is active.
        let _inner = executor::inner_threads_for_jobs(jobs);
        let results = executor::run_tasks(tasks, jobs, |_, (source, config)| {
            let result = runner.run(config, source, UserGroup::All, &runner_opts);
            progress.tick();
            result
        });
        progress.finish();
        let sweep = SweepResult { results };
        let mut groups = BTreeMap::new();
        let mut baselines = BTreeMap::new();
        for group in UserGroup::ALL {
            let users: Vec<u32> = runner.group_users(group).into_iter().map(|u| u.0).collect();
            let chr = runner.chronological_map(group);
            let ran = runner.random_map(group, &runner_opts);
            groups.insert(group.name().to_owned(), users);
            baselines.insert(group.name().to_owned(), (chr, ran));
        }
        Ok(SweepCache {
            scale: opts.scale.name().to_owned(),
            seed: opts.seed,
            iteration_scale: opts.iteration_scale,
            families: opts.family_filter_names(),
            sources: opts.effective_source_names(),
            retrieval: opts.retrieval.name().to_owned(),
            groups,
            baselines,
            sweep,
        })
    }

    /// Members of a group.
    pub fn group_members(&self, group: UserGroup) -> Vec<UserId> {
        self.groups
            .get(group.name())
            .map(|ids| ids.iter().map(|&i| UserId(i)).collect())
            .unwrap_or_default()
    }

    /// Members of a group as a set, for repeated per-result filtering.
    /// Build this once per aggregation instead of per `(result, group)`
    /// pair — the old per-call `Vec` + linear `contains` made every summary
    /// quadratic in the user count.
    pub fn group_member_set(&self, group: UserGroup) -> HashSet<UserId> {
        self.groups
            .get(group.name())
            .map(|ids| ids.iter().map(|&i| UserId(i)).collect())
            .unwrap_or_default()
    }

    /// MAP of one measurement restricted to a precomputed member set.
    pub fn group_map_in(result: &ConfigResult, members: &HashSet<UserId>) -> f64 {
        let aps: Vec<f64> = result
            .per_user_ap
            .iter()
            .filter(|(u, _)| members.contains(u))
            .map(|&(_, ap)| ap)
            .collect();
        if aps.is_empty() {
            0.0
        } else {
            aps.iter().sum::<f64>() / aps.len() as f64
        }
    }

    /// MAP of one measurement restricted to a group.
    pub fn group_map(&self, result: &ConfigResult, group: UserGroup) -> f64 {
        Self::group_map_in(result, &self.group_member_set(group))
    }

    /// Min/mean/max MAP of `(family, source)` over its configurations for a
    /// group — one bar triple of Figures 3–6.
    pub fn summary(
        &self,
        family: ModelFamily,
        source: RepresentationSource,
        group: UserGroup,
    ) -> MapSummary {
        let members = self.group_member_set(group);
        let maps: Vec<f64> = self
            .sweep
            .results
            .iter()
            .filter(|r| r.family == family && r.source == source)
            .map(|r| Self::group_map_in(r, &members))
            .collect();
        MapSummary::from_maps(&maps)
    }

    /// Min/mean/max MAP of a source over every configuration — one Table 6
    /// cell triple.
    pub fn source_summary(&self, source: RepresentationSource, group: UserGroup) -> MapSummary {
        let members = self.group_member_set(group);
        let maps: Vec<f64> = self
            .sweep
            .results
            .iter()
            .filter(|r| r.source == source)
            .map(|r| Self::group_map_in(r, &members))
            .collect();
        MapSummary::from_maps(&maps)
    }

    /// The best configuration of `(family, source)` averaged over all user
    /// types — one Table 7 cell.
    pub fn best_config(
        &self,
        family: ModelFamily,
        source: RepresentationSource,
    ) -> Option<&ConfigResult> {
        let members = self.group_member_set(UserGroup::All);
        self.sweep.results.iter().filter(|r| r.family == family && r.source == source).max_by(
            |a, b| {
                let ma = Self::group_map_in(a, &members);
                let mb = Self::group_map_in(b, &members);
                ma.total_cmp(&mb)
            },
        )
    }

    /// The (CHR, RAN) baselines of a group.
    pub fn baselines(&self, group: UserGroup) -> (f64, f64) {
        self.baselines.get(group.name()).copied().unwrap_or((0.0, 0.0))
    }
}

/// Right-pad to a column width.
pub fn pad(s: &str, w: usize) -> String {
    format!("{s:<w$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let opts = HarnessOptions::parse(
            ["--scale", "default", "--seed", "7", "--sources", "R,T", "--families", "TN"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(opts.scale, Scale::Default);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.sources, vec![RepresentationSource::R, RepresentationSource::T]);
        assert_eq!(opts.families, vec![ModelFamily::TN]);
        assert_eq!(opts.iteration_scale, Scale::Default.iteration_scale());
    }

    #[test]
    fn parses_jobs_flag() {
        let opts = HarnessOptions::parse(["--jobs", "3"].iter().map(|s| s.to_string()));
        assert_eq!(opts.jobs, 3);
        let opts = HarnessOptions::parse(std::iter::empty());
        assert!(opts.jobs >= 1, "default jobs comes from available parallelism");
    }

    #[test]
    fn parses_retrieval_flag() {
        let opts = HarnessOptions::parse(["--retrieval", "wand"].iter().map(|s| s.to_string()));
        assert_eq!(opts.retrieval, RetrievalMode::Wand);
        let opts = HarnessOptions::parse(std::iter::empty());
        assert_eq!(opts.retrieval, RetrievalMode::Exhaustive, "exhaustive stays the default");
    }

    #[test]
    fn iter_scale_override_sticks() {
        let opts = HarnessOptions::parse(
            ["--iter-scale", "0.5", "--scale", "smoke"].iter().map(|s| s.to_string()),
        );
        assert_eq!(opts.iteration_scale, 0.5);
    }

    #[test]
    fn source_keywords_expand() {
        let opts = HarnessOptions::parse(["--sources", "figures"].iter().map(|s| s.to_string()));
        assert_eq!(opts.sources.len(), 8);
        let opts = HarnessOptions::parse(["--sources", "all"].iter().map(|s| s.to_string()));
        assert_eq!(opts.sources.len(), 13);
    }

    /// A 9-run TNG × R smoke sweep: small enough for unit tests.
    fn tiny_opts() -> HarnessOptions {
        HarnessOptions {
            families: vec![ModelFamily::TNG],
            sources: vec![RepresentationSource::R],
            iteration_scale: 0.01,
            ..HarnessOptions::default()
        }
    }

    /// Serialize a sweep with the wall-clock timing fields zeroed, so two
    /// runs can be compared byte-for-byte.
    fn json_sans_timings(sweep: &SweepResult) -> String {
        let mut sweep = sweep.clone();
        for r in &mut sweep.results {
            r.train_time = std::time::Duration::ZERO;
            r.test_time = std::time::Duration::ZERO;
        }
        serde_json::to_string(&sweep).unwrap()
    }

    #[test]
    fn tiny_sweep_roundtrips_through_cache_format() {
        let opts = tiny_opts();
        let cache = SweepCache::run(&opts).expect("tiny sweep runs");
        assert_eq!(cache.sweep.results.len(), 9, "TNG spans 3 n-sizes × 3 similarities");
        let summary = cache.summary(ModelFamily::TNG, RepresentationSource::R, UserGroup::All);
        assert!(summary.max > 0.0);
        assert_eq!(cache.families, vec!["TNG".to_owned()]);
        assert_eq!(cache.sources, vec!["R".to_owned()]);
        let json = serde_json::to_string(&cache).unwrap();
        let back: SweepCache = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sweep.results.len(), 9);
        assert!(back.matches(&opts).is_ok());
    }

    #[test]
    fn wand_sweep_is_byte_identical_to_exhaustive() {
        // The sweep-level contract behind the CI retrieval-smoke job: the
        // WAND path runs at full coverage, so measurements (timings aside)
        // are byte-identical to the exhaustive reference — for the graph
        // family (TNG, overlap-gated comparisons) and the bag family (TN,
        // index + shortlist + kernel rescore) alike.
        for family in [ModelFamily::TNG, ModelFamily::TN] {
            let base = HarnessOptions { families: vec![family], ..tiny_opts() };
            let exhaustive = SweepCache::run(&base).expect("runs");
            let wand =
                SweepCache::run(&HarnessOptions { retrieval: RetrievalMode::Wand, ..base.clone() })
                    .expect("runs");
            assert_eq!(
                json_sans_timings(&exhaustive.sweep),
                json_sans_timings(&wand.sweep),
                "{} measurements must not depend on the retrieval mode",
                family.name()
            );
            assert_eq!(exhaustive.baselines, wand.baselines);
            assert_eq!(wand.retrieval, "wand");
        }
    }

    #[test]
    fn sweep_json_is_identical_for_any_job_count() {
        let sequential = SweepCache::run(&HarnessOptions { jobs: 1, ..tiny_opts() }).expect("runs");
        let parallel = SweepCache::run(&HarnessOptions { jobs: 4, ..tiny_opts() }).expect("runs");
        assert_eq!(
            json_sans_timings(&sequential.sweep),
            json_sans_timings(&parallel.sweep),
            "jobs=1 and jobs=4 must produce byte-identical measurements"
        );
        assert_eq!(sequential.baselines, parallel.baselines);
        assert_eq!(sequential.groups, parallel.groups);
    }

    #[test]
    fn filtered_cache_is_rejected_for_full_grid() {
        let dir = std::env::temp_dir().join(format!("pmr_cache_validation_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let filtered = HarnessOptions { out_dir: dir.clone(), ..tiny_opts() };
        let cache = SweepCache::run(&filtered).expect("tiny sweep runs");
        std::fs::write(filtered.sweep_path(), serde_json::to_vec(&cache).unwrap()).unwrap();
        // The full grid at the same scale/seed maps to the same cache path,
        // but must not reuse the filtered measurements.
        let full = HarnessOptions { out_dir: dir.clone(), ..HarnessOptions::default() };
        assert_eq!(filtered.sweep_path(), full.sweep_path());
        assert!(full.families.is_empty() && full.sources.is_empty());
        assert!(cache.matches(&full).is_err());
        assert!(SweepCache::load_if_valid(&full).is_none());
        // The options that produced the cache still load it.
        assert!(SweepCache::load_if_valid(&filtered).is_some());
        // Different iteration scale: rejected.
        let coarser = HarnessOptions { iteration_scale: 0.5, ..filtered.clone() };
        assert!(SweepCache::load_if_valid(&coarser).is_none());
        // Different retrieval mode: rejected (timings aren't comparable).
        let wand = HarnessOptions { retrieval: RetrievalMode::Wand, ..filtered.clone() };
        assert!(cache.matches(&wand).is_err());
        assert!(SweepCache::load_if_valid(&wand).is_none());
        // A pre-metadata cache (no `families` field) fails to parse and is
        // discarded rather than trusted.
        let json = serde_json::to_string(&cache).unwrap();
        let legacy = json.replacen("\"families\":", "\"families_legacy\":", 1);
        assert_ne!(json, legacy, "cache JSON must carry the families field");
        std::fs::write(filtered.sweep_path(), legacy).unwrap();
        assert!(SweepCache::load_if_valid(&filtered).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
