//! Shared harness plumbing: CLI options, the sweep cache, table rendering.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use pmr_core::experiment::{ConfigResult, ExperimentRunner, RunnerOptions, SweepResult};
use pmr_core::eval::MapSummary;
use pmr_core::recommender::ScoringOptions;
use pmr_core::split::SplitConfig;
use pmr_core::{ConfigGrid, ModelFamily, PreparedCorpus, RepresentationSource};
use pmr_sim::usertype::UserGroup;
use pmr_sim::{generate_corpus, ScalePreset, SimConfig, UserId};

/// Corpus/experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Tiny corpus, heavily scaled-down sampler iterations (~minutes).
    Smoke,
    /// The documented default (EXPERIMENTS.md records this scale).
    Default,
    /// Approaches the paper's magnitudes. Hours to days.
    Full,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Lower-case name (cache-file key).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }

    /// The simulator preset for this scale.
    pub fn preset(self) -> ScalePreset {
        match self {
            Scale::Smoke => ScalePreset::Smoke,
            Scale::Default => ScalePreset::Default,
            Scale::Full => ScalePreset::Full,
        }
    }

    /// The default Gibbs/EM iteration multiplier (relative to the paper's
    /// 1,000–2,000 sweeps) — the corpus is a simulator, not a 32-core Xeon
    /// running for 5 days, so the harness trades sampler convergence for
    /// tractability while keeping every configuration distinct.
    pub fn iteration_scale(self) -> f64 {
        match self {
            Scale::Smoke => 0.015,
            Scale::Default => 0.03,
            Scale::Full => 1.0,
        }
    }
}

/// Parsed harness options (shared by every experiment binary).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HarnessOptions {
    /// Corpus scale.
    pub scale: Scale,
    /// Corpus seed.
    pub seed: u64,
    /// Gibbs/EM iteration multiplier (defaults per scale).
    pub iteration_scale: f64,
    /// Restrict the sweep to these families (empty = all nine).
    pub families: Vec<ModelFamily>,
    /// Restrict the sweep to these sources (empty = all thirteen).
    pub sources: Vec<RepresentationSource>,
    /// Output/cache directory.
    pub out_dir: PathBuf,
    /// User group filter for figure binaries.
    pub group: Option<UserGroup>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            scale: Scale::Smoke,
            seed: 42,
            iteration_scale: Scale::Smoke.iteration_scale(),
            families: Vec::new(),
            sources: Vec::new(),
            out_dir: PathBuf::from("results"),
            group: None,
        }
    }
}

impl HarnessOptions {
    /// Parse `--flag value` style arguments; unknown flags abort with usage.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> HarnessOptions {
        let mut opts = HarnessOptions::default();
        let mut explicit_iter_scale = false;
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> String {
                it.next().unwrap_or_else(|| usage(&format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--scale" => {
                    let v = value("--scale");
                    opts.scale =
                        Scale::parse(&v).unwrap_or_else(|| usage(&format!("bad scale {v}")));
                }
                "--seed" => {
                    opts.seed = value("--seed").parse().unwrap_or_else(|_| usage("bad seed"));
                }
                "--iter-scale" => {
                    opts.iteration_scale =
                        value("--iter-scale").parse().unwrap_or_else(|_| usage("bad iter-scale"));
                    explicit_iter_scale = true;
                }
                "--families" => {
                    opts.families = value("--families")
                        .split(',')
                        .map(|f| parse_family(f).unwrap_or_else(|| usage(&format!("bad family {f}"))))
                        .collect();
                }
                "--sources" => {
                    let v = value("--sources");
                    opts.sources = match v.as_str() {
                        "all" => RepresentationSource::ALL.to_vec(),
                        "figures" => RepresentationSource::FIGURES.to_vec(),
                        list => list
                            .split(',')
                            .map(|s| {
                                parse_source(s)
                                    .unwrap_or_else(|| usage(&format!("bad source {s}")))
                            })
                            .collect(),
                    };
                }
                "--out" => opts.out_dir = PathBuf::from(value("--out")),
                "--group" => {
                    let v = value("--group");
                    opts.group = Some(match v.as_str() {
                        "all" => UserGroup::All,
                        "is" => UserGroup::IS,
                        "bu" => UserGroup::BU,
                        "ip" => UserGroup::IP,
                        _ => usage(&format!("bad group {v}")),
                    });
                }
                "--help" | "-h" => usage("help requested"),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if !explicit_iter_scale {
            opts.iteration_scale = opts.scale.iteration_scale();
        }
        opts
    }

    /// Parse from the process arguments.
    pub fn from_env() -> HarnessOptions {
        HarnessOptions::parse(std::env::args().skip(1))
    }

    /// The simulator configuration for these options.
    pub fn sim_config(&self) -> SimConfig {
        SimConfig::preset(self.scale.preset(), self.seed)
    }

    /// The scoring/runner options for these options.
    pub fn runner_options(&self) -> RunnerOptions {
        RunnerOptions {
            scoring: ScoringOptions {
                iteration_scale: self.iteration_scale,
                infer_iterations: 8,
                seed: self.seed,
            },
            ran_iterations: 1_000,
        }
    }

    /// The sweep's cache path for these options.
    pub fn sweep_path(&self) -> PathBuf {
        self.out_dir.join(format!("sweep_{}_{}.json", self.scale.name(), self.seed))
    }

    /// Generate and prepare the corpus.
    pub fn prepare_corpus(&self) -> PreparedCorpus {
        let corpus = generate_corpus(&self.sim_config());
        PreparedCorpus::new(corpus, SplitConfig::default())
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: <bin> [--scale smoke|default|full] [--seed N] [--iter-scale F]\n\
         \x20      [--families TN,CN,...] [--sources all|figures|R,T,...]\n\
         \x20      [--out DIR] [--group all|is|bu|ip]"
    );
    std::process::exit(2);
}

fn parse_family(s: &str) -> Option<ModelFamily> {
    match s.to_ascii_uppercase().as_str() {
        "TN" => Some(ModelFamily::TN),
        "CN" => Some(ModelFamily::CN),
        "TNG" => Some(ModelFamily::TNG),
        "CNG" => Some(ModelFamily::CNG),
        "LDA" => Some(ModelFamily::LDA),
        "LLDA" => Some(ModelFamily::LLDA),
        "BTM" => Some(ModelFamily::BTM),
        "HDP" => Some(ModelFamily::HDP),
        "HLDA" => Some(ModelFamily::HLDA),
        "PLSA" => Some(ModelFamily::PLSA),
        _ => None,
    }
}

fn parse_source(s: &str) -> Option<RepresentationSource> {
    RepresentationSource::ALL.into_iter().find(|src| src.name().eq_ignore_ascii_case(s))
}

/// A persisted sweep: measurements over All Users plus the group membership
/// and baselines needed to derive every figure and table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCache {
    /// Scale name the sweep ran at.
    pub scale: String,
    /// Corpus seed.
    pub seed: u64,
    /// Iteration multiplier used.
    pub iteration_scale: f64,
    /// Group name → member user ids (only users with a valid split).
    pub groups: BTreeMap<String, Vec<u32>>,
    /// Group name → (CHR MAP, RAN MAP).
    pub baselines: BTreeMap<String, (f64, f64)>,
    /// The raw measurements (group field is always All Users).
    pub sweep: SweepResult,
}

impl SweepCache {
    /// Load the cached sweep for `opts`, or run it (and cache it).
    pub fn load_or_run(opts: &HarnessOptions) -> SweepCache {
        let path = opts.sweep_path();
        if let Ok(bytes) = std::fs::read(&path) {
            match serde_json::from_slice::<SweepCache>(&bytes) {
                Ok(cache) => {
                    eprintln!("loaded cached sweep from {}", path.display());
                    return cache;
                }
                Err(e) => eprintln!("ignoring unreadable cache {}: {e}", path.display()),
            }
        }
        let cache = Self::run(opts);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, serde_json::to_vec(&cache).expect("serializable")) {
            Ok(()) => eprintln!("cached sweep at {}", path.display()),
            Err(e) => eprintln!("could not cache sweep: {e}"),
        }
        cache
    }

    /// Run the sweep for `opts` without touching the cache.
    pub fn run(opts: &HarnessOptions) -> SweepCache {
        let prepared = opts.prepare_corpus();
        let runner = ExperimentRunner::new(&prepared);
        let runner_opts = opts.runner_options();
        let grid = ConfigGrid::paper();
        let sources: Vec<RepresentationSource> = if opts.sources.is_empty() {
            RepresentationSource::ALL.to_vec()
        } else {
            opts.sources.clone()
        };
        let configs: Vec<_> = grid
            .configs()
            .iter()
            .filter(|c| opts.families.is_empty() || opts.families.contains(&c.family()))
            .collect();
        let total: usize = sources
            .iter()
            .map(|&s| configs.iter().filter(|c| c.valid_for_source(s)).count())
            .sum();
        eprintln!(
            "sweep: {} configs × {} sources = {total} runs at scale {} (iter-scale {})",
            configs.len(),
            sources.len(),
            opts.scale.name(),
            opts.iteration_scale
        );
        let mut sweep = SweepResult::default();
        let mut done = 0usize;
        let t0 = std::time::Instant::now();
        for &source in &sources {
            for config in &configs {
                if !config.valid_for_source(source) {
                    continue;
                }
                sweep.results.push(runner.run(config, source, UserGroup::All, &runner_opts));
                done += 1;
                if done.is_multiple_of(25) || done == total {
                    eprint!(
                        "\r  {done}/{total} runs ({:.0}s elapsed)   ",
                        t0.elapsed().as_secs_f64()
                    );
                    let _ = std::io::stderr().flush();
                }
            }
        }
        eprintln!();
        let mut groups = BTreeMap::new();
        let mut baselines = BTreeMap::new();
        for group in UserGroup::ALL {
            let users: Vec<u32> =
                runner.group_users(group).into_iter().map(|u| u.0).collect();
            let chr = runner.chronological_map(group);
            let ran = runner.random_map(group, &runner_opts);
            groups.insert(group.name().to_owned(), users);
            baselines.insert(group.name().to_owned(), (chr, ran));
        }
        SweepCache {
            scale: opts.scale.name().to_owned(),
            seed: opts.seed,
            iteration_scale: opts.iteration_scale,
            groups,
            baselines,
            sweep,
        }
    }

    /// Members of a group.
    pub fn group_members(&self, group: UserGroup) -> Vec<UserId> {
        self.groups
            .get(group.name())
            .map(|ids| ids.iter().map(|&i| UserId(i)).collect())
            .unwrap_or_default()
    }

    /// MAP of one measurement restricted to a group.
    pub fn group_map(&self, result: &ConfigResult, group: UserGroup) -> f64 {
        let members = self.group_members(group);
        let aps: Vec<f64> = result
            .per_user_ap
            .iter()
            .filter(|(u, _)| members.contains(u))
            .map(|&(_, ap)| ap)
            .collect();
        if aps.is_empty() {
            0.0
        } else {
            aps.iter().sum::<f64>() / aps.len() as f64
        }
    }

    /// Min/mean/max MAP of `(family, source)` over its configurations for a
    /// group — one bar triple of Figures 3–6.
    pub fn summary(
        &self,
        family: ModelFamily,
        source: RepresentationSource,
        group: UserGroup,
    ) -> MapSummary {
        let maps: Vec<f64> = self
            .sweep
            .results
            .iter()
            .filter(|r| r.family == family && r.source == source)
            .map(|r| self.group_map(r, group))
            .collect();
        MapSummary::from_maps(&maps)
    }

    /// Min/mean/max MAP of a source over every configuration — one Table 6
    /// cell triple.
    pub fn source_summary(&self, source: RepresentationSource, group: UserGroup) -> MapSummary {
        let maps: Vec<f64> = self
            .sweep
            .results
            .iter()
            .filter(|r| r.source == source)
            .map(|r| self.group_map(r, group))
            .collect();
        MapSummary::from_maps(&maps)
    }

    /// The best configuration of `(family, source)` averaged over all user
    /// types — one Table 7 cell.
    pub fn best_config(
        &self,
        family: ModelFamily,
        source: RepresentationSource,
    ) -> Option<&ConfigResult> {
        self.sweep
            .results
            .iter()
            .filter(|r| r.family == family && r.source == source)
            .max_by(|a, b| {
                let ma = self.group_map(a, UserGroup::All);
                let mb = self.group_map(b, UserGroup::All);
                ma.partial_cmp(&mb).expect("MAPs are finite")
            })
    }

    /// The (CHR, RAN) baselines of a group.
    pub fn baselines(&self, group: UserGroup) -> (f64, f64) {
        self.baselines.get(group.name()).copied().unwrap_or((0.0, 0.0))
    }
}

/// Right-pad to a column width.
pub fn pad(s: &str, w: usize) -> String {
    format!("{s:<w$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags() {
        let opts = HarnessOptions::parse(
            ["--scale", "default", "--seed", "7", "--sources", "R,T", "--families", "TN"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(opts.scale, Scale::Default);
        assert_eq!(opts.seed, 7);
        assert_eq!(opts.sources, vec![RepresentationSource::R, RepresentationSource::T]);
        assert_eq!(opts.families, vec![ModelFamily::TN]);
        assert_eq!(opts.iteration_scale, Scale::Default.iteration_scale());
    }

    #[test]
    fn iter_scale_override_sticks() {
        let opts = HarnessOptions::parse(
            ["--iter-scale", "0.5", "--scale", "smoke"].iter().map(|s| s.to_string()),
        );
        assert_eq!(opts.iteration_scale, 0.5);
    }

    #[test]
    fn source_keywords_expand() {
        let opts =
            HarnessOptions::parse(["--sources", "figures"].iter().map(|s| s.to_string()));
        assert_eq!(opts.sources.len(), 8);
        let opts = HarnessOptions::parse(["--sources", "all"].iter().map(|s| s.to_string()));
        assert_eq!(opts.sources.len(), 13);
    }

    #[test]
    fn tiny_sweep_roundtrips_through_cache_format() {
        let opts = HarnessOptions {
            families: vec![ModelFamily::TNG],
            sources: vec![RepresentationSource::R],
            iteration_scale: 0.01,
            ..HarnessOptions::default()
        };
        let cache = SweepCache::run(&opts);
        assert_eq!(cache.sweep.results.len(), 9, "TNG spans 3 n-sizes × 3 similarities");
        let summary =
            cache.summary(ModelFamily::TNG, RepresentationSource::R, UserGroup::All);
        assert!(summary.max > 0.0);
        let json = serde_json::to_string(&cache).unwrap();
        let back: SweepCache = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sweep.results.len(), 9);
    }
}
