//! Regenerates **Tables 4 and 5**: the configuration grid of the nine
//! representation models, with the paper's validity and resource-constraint
//! rules applied (223 configurations in total; PLSA's 48 excluded by the
//! memory constraint).
//!
//! Takes no harness flags — the grid is static, so neither the corpus
//! options nor `--jobs` apply.

use pmr_core::{ConfigGrid, ModelFamily};

fn main() {
    let grid = ConfigGrid::paper();

    println!("Tables 4 & 5: model configurations after validity + constraint pruning\n");
    println!("Table 4 — context-agnostic (topic) models:");
    for family in
        [ModelFamily::LDA, ModelFamily::LLDA, ModelFamily::BTM, ModelFamily::HDP, ModelFamily::HLDA]
    {
        println!("  {family:<5} {:>3} configurations", grid.family(family).len());
    }
    println!("\nTable 5 — context-based models:");
    for family in [ModelFamily::TN, ModelFamily::CN, ModelFamily::TNG, ModelFamily::CNG] {
        println!("  {family:<5} {:>3} configurations", grid.family(family).len());
    }
    println!("\nTotal: {} configurations (paper: 223)", grid.len());
    println!(
        "Excluded by the 32 GB memory constraint: PLSA ({} configurations when lifted)",
        ConfigGrid::with_excluded().family(ModelFamily::PLSA).len()
    );

    println!("\nFull enumeration:");
    let mut last_family = None;
    for config in grid.configs() {
        if last_family != Some(config.family()) {
            println!("--- {} ---", config.family());
            last_family = Some(config.family());
        }
        println!("  {}", config.describe());
    }
}
