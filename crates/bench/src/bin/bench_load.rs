//! Open-loop load generator for the elastic serving runtime.
//!
//! ```text
//! cargo run --release -p pmr-bench --bin bench_load -- \
//!     --scale smoke --seed 42 --model bag --shards 64 --workers 4 \
//!     --out results/BENCH_load.json
//! ```
//!
//! Where `bench_serve` replays the stream closed-loop (each event issued
//! as soon as the previous one is accepted), this harness drives the
//! [`pmr_serve::Engine`] **open-loop**: every engine operation gets a
//! deterministic, seeded *arrival time*, and the driver issues it at that
//! time regardless of whether the engine has caught up. Latency is
//! therefore *sojourn time* — completion minus scheduled arrival — which
//! is the quantity that explodes under overload and the one coordinated
//! omission hides from closed-loop harnesses.
//!
//! Three arrival scenarios, all derived from the same operation list:
//!
//! * **poisson** — memoryless arrivals at a uniform offered rate;
//! * **storm** — the middle third of the stream arrives at `--burst`×
//!   the base rate, modelling a celebrity flash crowd on top of the
//!   corpus's intrinsic power-law fan-out (hot logical shards);
//! * **herd** — operations arrive in synchronized waves (thundering
//!   herd): a full second of work lands at one instant, then silence.
//!
//! The harness also measures raw **capacity** (all arrivals at t=0) for
//! the work-stealing runtime vs. the thread-per-shard baseline — the
//! elastic-serving speedup figure — and finishes with an in-process
//! **live-reshard** leg: snapshot mid-storm under the source layout,
//! restore under shrunken and grown layouts, and byte-diff the stitched
//! recommendation logs. Every leg's rec log must equal the `Replay`
//! reference; timing numbers are machine-specific diagnostics, excluded
//! from determinism comparisons (see EXPERIMENTS.md).

use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use pmr_bench::Scale;
use pmr_core::{PreparedCorpus, SplitConfig};
use pmr_serve::{
    precompute_features, rec_log, Engine, EngineConfig, EngineSnapshot, Replay, ReplayOptions,
    RuntimeOptions, Scheduler, ServeModel, TweetFeatures,
};
use pmr_sim::{generate_corpus, SimConfig, Timestamp, TweetId, UserId};

/// One engine operation, flattened from the replay's event semantics so
/// arrivals can be paced individually (a single stream event fans out to
/// many operations).
enum Op {
    Candidate { user: UserId, tweet: TweetId, at: Timestamp, features: Arc<TweetFeatures> },
    Observe { user: UserId, features: Arc<TweetFeatures> },
    Query { user: UserId, at: Timestamp },
}

#[derive(Debug, Serialize)]
struct LatencySummary {
    count: u64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_us: u64,
}

impl LatencySummary {
    fn from_histogram(h: Option<&pmr_obs::HistogramSnapshot>) -> LatencySummary {
        match h {
            Some(h) => LatencySummary {
                count: h.count,
                p50_us: h.quantile_us(0.5),
                p99_us: h.quantile_us(0.99),
                p999_us: h.quantile_us(0.999),
                max_us: h.max_us,
            },
            None => LatencySummary { count: 0, p50_us: 0, p99_us: 0, p999_us: 0, max_us: 0 },
        }
    }
}

#[derive(Debug, Serialize)]
struct CapacityLeg {
    scheduler: &'static str,
    shards: usize,
    workers: usize,
    elapsed_s: f64,
    ops_per_sec: f64,
    backpressure: u64,
}

#[derive(Debug, Serialize)]
struct ScenarioLeg {
    scenario: &'static str,
    offered_ops_per_sec: f64,
    elapsed_s: f64,
    ingest: LatencySummary,
    query: LatencySummary,
    backpressure: u64,
    /// Per-logical-shard backpressure, log-4 bucketed by shard id
    /// (`serve.backpressure.shard_b*`); trailing zero buckets trimmed.
    backpressure_buckets: Vec<u64>,
    steals: u64,
    parks: u64,
    yields: u64,
}

#[derive(Debug, Serialize)]
struct ReshardLayout {
    shards: usize,
    workers: usize,
    scheduler: &'static str,
    identical: bool,
}

#[derive(Debug, Serialize)]
struct ReshardLeg {
    snapshot_at_event: usize,
    source_shards: usize,
    source_workers: usize,
    layouts: Vec<ReshardLayout>,
    identical: bool,
}

#[derive(Debug, Serialize)]
struct LoadReport {
    benchmark: &'static str,
    scale: String,
    seed: u64,
    model: String,
    shards: usize,
    workers: usize,
    queue_capacity: usize,
    k: usize,
    query_every: usize,
    window: usize,
    stream_events: usize,
    ops: usize,
    queries: u64,
    capacity: Vec<CapacityLeg>,
    /// Work-steal ops/s over thread-per-shard ops/s at the same shard
    /// count — the elastic-serving headline figure.
    speedup: f64,
    scenarios: Vec<ScenarioLeg>,
    /// Every leg's recommendation log byte-equals the `Replay` reference.
    rec_log_identical: bool,
    reshard: ReshardLeg,
}

fn usage(problem: &str) -> ! {
    eprintln!("bench_load: {problem}");
    eprintln!(
        "usage: bench_load [--scale smoke|default|full] [--seed N] [--model bag|graph] \
         [--shards N] [--workers N] [--queue N] [--k N] [--query-every N] [--window N] \
         [--paced-seconds S] [--burst X] [--out PATH]"
    );
    exit(2);
}

fn main() {
    let mut scale = Scale::Smoke;
    let mut seed: u64 = 42;
    let mut model = String::from("bag");
    let mut shards: usize = 64;
    let mut workers: usize = 4;
    let mut queue: usize = 256;
    let mut k: usize = 10;
    let mut query_every: usize = 25;
    let mut window: usize = 128;
    let mut paced_seconds: f64 = 2.0;
    let mut burst: f64 = 8.0;
    let mut out = String::from("results/BENCH_load.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| usage(&format!("{flag} requires a value")));
        let parse_usize = |flag: &str, v: String| {
            v.parse::<usize>().unwrap_or_else(|_| usage(&format!("{flag} wants a number")))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                scale = Scale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale {v:?}")));
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| usage("--seed wants a number"))
            }
            "--model" => model = value("--model"),
            "--shards" => shards = parse_usize("--shards", value("--shards")),
            "--workers" => workers = parse_usize("--workers", value("--workers")),
            "--queue" => queue = parse_usize("--queue", value("--queue")),
            "--k" => k = parse_usize("--k", value("--k")),
            "--query-every" => query_every = parse_usize("--query-every", value("--query-every")),
            "--window" => window = parse_usize("--window", value("--window")),
            "--paced-seconds" => {
                paced_seconds = value("--paced-seconds")
                    .parse()
                    .unwrap_or_else(|_| usage("--paced-seconds wants seconds"))
            }
            "--burst" => {
                burst = value("--burst").parse().unwrap_or_else(|_| usage("--burst wants a factor"))
            }
            "--out" => out = value("--out"),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let serve_model = match model.as_str() {
        "bag" => ServeModel::Bag {
            weighting: pmr_bag::WeightingScheme::TFIDF,
            similarity: pmr_bag::BagSimilarity::Cosine,
            char_grams: false,
            n: 1,
            decay: 0.99,
        },
        "graph" => ServeModel::Graph {
            similarity: pmr_graph::GraphSimilarity::Value,
            char_grams: false,
            n: 1,
        },
        other => usage(&format!("unknown model {other:?} (bag|graph)")),
    };
    let config = EngineConfig { model: serve_model, window };

    eprintln!("preparing corpus (scale {scale:?}, seed {seed})...");
    let corpus = generate_corpus(&SimConfig::preset(scale.preset(), seed));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    let features = precompute_features(&prepared, serve_model, workers.max(1));
    let (ops, stream_events) = build_ops(&prepared, &features, query_every);
    assert!(!ops.is_empty(), "the corpus must produce at least one operation");

    // The determinism reference: an uninterrupted Replay under an
    // arbitrary layout. Every leg below must replicate its rec log.
    let replay_options = ReplayOptions {
        config,
        runtime: RuntimeOptions {
            shards,
            workers,
            queue_capacity: queue,
            ..RuntimeOptions::default()
        },
        k,
        query_every,
        jobs: 1,
    };
    let reference = Replay::run(&prepared, replay_options);
    let reference_log = rec_log(&reference.recommendations).expect("log serializes");
    assert!(reference.queries > 0, "the stream must issue queries");

    let mut rec_log_identical = true;
    let mut check_log = |leg: &str, recs: &[pmr_serve::Recommendation]| {
        let log = rec_log(recs).expect("log serializes");
        if log != reference_log {
            rec_log_identical = false;
            eprintln!("DIVERGENT rec log in leg {leg}");
        }
    };

    // Capacity: all arrivals at t=0, work-steal vs. thread-per-shard.
    // Three repetitions, best kept — a capacity leg finishes in well under
    // a second at smoke scale, so a single run is scheduler-noise-bound.
    let mut capacity = Vec::new();
    for (scheduler, leg_workers) in [(Scheduler::Threaded, shards), (Scheduler::WorkSteal, workers)]
    {
        let runtime = RuntimeOptions {
            shards,
            workers,
            queue_capacity: queue,
            scheduler,
            ..RuntimeOptions::default()
        };
        let mut best: Option<(Duration, pmr_obs::MetricsSnapshot)> = None;
        for _ in 0..3 {
            let (elapsed, metrics, recs) = drive(config, runtime, &ops, None, k);
            check_log(scheduler.name(), &recs);
            if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
                best = Some((elapsed, metrics));
            }
        }
        let (elapsed, metrics) = best.expect("three repetitions ran");
        let leg = CapacityLeg {
            scheduler: scheduler.name(),
            shards,
            workers: leg_workers,
            elapsed_s: elapsed.as_secs_f64(),
            ops_per_sec: ops.len() as f64 / elapsed.as_secs_f64(),
            backpressure: metrics.counter("serve.backpressure"),
        };
        eprintln!(
            "capacity[{}]: {} ops in {:.2}s ({:.0} ops/s, backpressure {})",
            leg.scheduler,
            ops.len(),
            leg.elapsed_s,
            leg.ops_per_sec,
            leg.backpressure
        );
        capacity.push(leg);
    }
    let speedup = capacity[1].ops_per_sec / capacity[0].ops_per_sec;
    eprintln!(
        "speedup: worksteal({workers} workers) = {speedup:.2}x thread-per-shard ({shards} shards)"
    );

    // Paced scenarios on the work-stealing runtime.
    let rate = ops.len() as f64 / paced_seconds.max(0.1);
    let mut scenarios = Vec::new();
    for scenario in ["poisson", "storm", "herd"] {
        let schedule = build_schedule(scenario, ops.len(), rate, burst, seed);
        let runtime = RuntimeOptions {
            shards,
            workers,
            queue_capacity: queue,
            scheduler: Scheduler::WorkSteal,
            ..RuntimeOptions::default()
        };
        let (elapsed, metrics, recs) = drive(config, runtime, &ops, Some(&schedule), k);
        check_log(scenario, &recs);
        let buckets = backpressure_buckets(&metrics);
        let leg = ScenarioLeg {
            scenario: match scenario {
                "poisson" => "poisson",
                "storm" => "storm",
                _ => "herd",
            },
            offered_ops_per_sec: rate,
            elapsed_s: elapsed.as_secs_f64(),
            ingest: LatencySummary::from_histogram(metrics.histogram("load.ingest")),
            query: LatencySummary::from_histogram(metrics.histogram("load.query")),
            backpressure: metrics.counter("serve.backpressure"),
            backpressure_buckets: buckets,
            steals: metrics.counter("serve.runtime.steals"),
            parks: metrics.counter("serve.runtime.parks"),
            yields: metrics.counter("serve.runtime.yields"),
        };
        eprintln!(
            "{scenario}: offered {:.0} ops/s, ingest p99 {}us p999 {}us, \
             query p99 {}us p999 {}us, backpressure {}",
            leg.offered_ops_per_sec,
            leg.ingest.p99_us,
            leg.ingest.p999_us,
            leg.query.p99_us,
            leg.query.p999_us,
            leg.backpressure,
        );
        scenarios.push(leg);
    }

    // Live reshard: snapshot mid-storm under the source layout, restore
    // shrunken and grown, byte-diff the stitched logs.
    let reshard = reshard_leg(&prepared, replay_options, &reference_log);
    if !reshard.identical {
        eprintln!("DIVERGENT rec log after live reshard");
    }

    let report = LoadReport {
        benchmark: "load",
        scale: format!("{scale:?}").to_lowercase(),
        seed,
        model,
        shards,
        workers,
        queue_capacity: queue,
        k,
        query_every,
        window,
        stream_events,
        ops: ops.len(),
        queries: reference.queries,
        capacity,
        speedup,
        scenarios,
        rec_log_identical,
        reshard,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("output directory is creatable");
    }
    std::fs::write(&out, json + "\n").expect("report file is writable");
    eprintln!("wrote {out}");
    if !report.rec_log_identical || !report.reshard.identical {
        exit(1);
    }
}

/// Flatten the corpus's event stream into the exact operation sequence
/// [`Replay::run_to`] would issue: originals fan out to the author's
/// followers, retweets observe the original and fan it out to the
/// reposter's audience, and every `query_every` events the next evaluated
/// user (round-robin) is queried. Identical order → identical rec log.
fn build_ops(
    prepared: &PreparedCorpus,
    features: &[Option<Arc<TweetFeatures>>],
    query_every: usize,
) -> (Vec<Op>, usize) {
    let stream = prepared.corpus.event_stream();
    let eval_users: Vec<UserId> = prepared.corpus.evaluated_user_ids().collect();
    let mut ops = Vec::new();
    let mut queries = 0usize;
    let fan_out = |ops: &mut Vec<Op>, author: UserId, tweet: TweetId, at: Timestamp| {
        if let Some(f) = features[tweet.index()].clone() {
            for &follower in prepared.corpus.graph.followers(author) {
                ops.push(Op::Candidate { user: follower, tweet, at, features: Arc::clone(&f) });
            }
        }
    };
    for (i, event) in stream.iter().enumerate() {
        match event.retweet_of {
            None => fan_out(&mut ops, event.author, event.tweet, event.at),
            Some(original) => {
                if let Some(f) = features[original.index()].clone() {
                    ops.push(Op::Observe { user: event.author, features: f });
                }
                fan_out(&mut ops, event.author, original, event.at);
            }
        }
        if query_every > 0 && (i + 1).is_multiple_of(query_every) && !eval_users.is_empty() {
            let user = eval_users[queries % eval_users.len()];
            ops.push(Op::Query { user, at: event.at });
            queries += 1;
        }
    }
    (ops, stream.len())
}

/// Deterministic, seeded arrival offsets for every operation. Offsets are
/// non-decreasing (cumulative inter-arrival gaps), so the single-writer
/// driver issues operations in list order and sojourn times are always
/// measured against a past-or-present arrival instant.
fn build_schedule(scenario: &str, ops: usize, rate: f64, burst: f64, seed: u64) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed ^ scenario.len() as u64 ^ 0x6c6f6164);
    let mut exp_gap = |mean: f64| -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * mean
    };
    let base_gap = 1.0 / rate.max(1.0);
    let mut offsets = Vec::with_capacity(ops);
    let mut t = 0.0f64;
    match scenario {
        // Memoryless arrivals at the uniform offered rate.
        "poisson" => {
            for _ in 0..ops {
                t += exp_gap(base_gap);
                offsets.push(Duration::from_secs_f64(t));
            }
        }
        // Flash crowd: the middle third arrives `burst`× faster.
        "storm" => {
            let (lo, hi) = (ops / 3, 2 * ops / 3);
            for i in 0..ops {
                let mean = if (lo..hi).contains(&i) { base_gap / burst.max(1.0) } else { base_gap };
                t += exp_gap(mean);
                offsets.push(Duration::from_secs_f64(t));
            }
        }
        // Thundering herd: a full wave of work lands at one instant.
        _ => {
            let wave = (rate.max(1.0) as usize).max(1);
            for i in 0..ops {
                if i % wave == 0 {
                    t += wave as f64 * base_gap;
                }
                offsets.push(Duration::from_secs_f64(t));
            }
        }
    }
    offsets
}

/// Drive one engine through `ops`. With a schedule, each operation is
/// released at its arrival offset (open-loop); without one, everything is
/// offered at t=0 (capacity). Returns the wall time across all ops, the
/// leg's metrics snapshot, and the recommendations in query-id order.
fn drive(
    config: EngineConfig,
    runtime: RuntimeOptions,
    ops: &[Op],
    schedule: Option<&[Duration]>,
    k: usize,
) -> (Duration, pmr_obs::MetricsSnapshot, Vec<pmr_serve::Recommendation>) {
    pmr_obs::install(pmr_obs::Recorder::monotonic());
    let mut engine = Engine::start(config, runtime);
    let mut query_arrivals: Vec<Instant> = Vec::new();
    let mut answered: u64 = 0;
    let start = Instant::now();
    let record_answers = |engine: &mut Engine, arrivals: &[Instant], answered: &mut u64| {
        for id in engine.poll_answered() {
            let done = Instant::now();
            pmr_obs::observe_duration(
                "load.query",
                done.saturating_duration_since(arrivals[id as usize]),
            );
            *answered += 1;
        }
    };
    for (i, op) in ops.iter().enumerate() {
        let arrival = match schedule {
            Some(s) => {
                let target = start + s[i];
                loop {
                    let now = Instant::now();
                    if now >= target {
                        break;
                    }
                    // Short sleeps keep the release jitter well under the
                    // microsecond buckets the histograms resolve.
                    std::thread::sleep((target - now).min(Duration::from_micros(200)));
                }
                target
            }
            // Capacity mode: arrival is the issue instant, so "sojourn"
            // degenerates to pure service/backpressure time.
            None => Instant::now(),
        };
        match op {
            Op::Candidate { user, tweet, at, features } => {
                engine.post_candidate(*user, *tweet, *at, features);
                pmr_obs::observe_duration(
                    "load.ingest",
                    Instant::now().saturating_duration_since(arrival),
                );
            }
            Op::Observe { user, features } => {
                engine.observe(*user, features);
                pmr_obs::observe_duration(
                    "load.ingest",
                    Instant::now().saturating_duration_since(arrival),
                );
            }
            Op::Query { user, at } => {
                let id = engine.query(*user, k, *at);
                debug_assert_eq!(id as usize, query_arrivals.len());
                query_arrivals.push(arrival);
                record_answers(&mut engine, &query_arrivals, &mut answered);
            }
        }
        if i % 256 == 0 {
            record_answers(&mut engine, &query_arrivals, &mut answered);
        }
    }
    // Wait for the in-flight tail so every query gets a sojourn sample.
    let issued = engine.queries_issued();
    let deadline = Instant::now() + Duration::from_secs(30);
    while answered < issued && Instant::now() < deadline {
        record_answers(&mut engine, &query_arrivals, &mut answered);
        if answered < issued {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
    let elapsed = start.elapsed();
    let recommendations = engine.finish();
    let metrics = pmr_obs::snapshot().expect("recorder is installed");
    pmr_obs::uninstall();
    (elapsed, metrics, recommendations)
}

/// Collect the per-shard log-4 backpressure buckets
/// (`serve.backpressure.shard_b0..`), trimming trailing zeros.
fn backpressure_buckets(metrics: &pmr_obs::MetricsSnapshot) -> Vec<u64> {
    let mut buckets: Vec<u64> =
        (0..11).map(|b| metrics.counter(&format!("serve.backpressure.shard_b{b}"))).collect();
    while buckets.last() == Some(&0) {
        buckets.pop();
    }
    buckets
}

/// The live-reshard leg: run the work-stealing source layout to just past
/// the widest celebrity fan-out (mid-storm), snapshot through the JSONL
/// wire format, and restore under shrunken, grown, and cross-scheduler
/// layouts. The stitched head+tail rec log must byte-equal the reference.
fn reshard_leg(
    prepared: &PreparedCorpus,
    options: ReplayOptions,
    reference_log: &str,
) -> ReshardLeg {
    let stream = prepared.corpus.event_stream();
    let mut pause = 0;
    let mut widest = 0;
    for (i, event) in stream.iter().enumerate() {
        let fan_out = prepared.corpus.graph.followers(event.author).len();
        if fan_out > widest {
            widest = fan_out;
            pause = i + 1;
        }
    }
    let pause = pause.min(stream.len().saturating_sub(1)).max(1);

    let mut head_run = Replay::new(prepared, options);
    head_run.run_to(pause);
    let snapshot = head_run.snapshot().expect("all shards alive");
    let wire = snapshot.to_jsonl().expect("snapshot serializes");
    let head = head_run.finish();

    let source = options.runtime;
    let mut layouts = Vec::new();
    for (shards, workers, scheduler) in [
        (1usize, 1usize, Scheduler::WorkSteal),
        (source.shards * 4, source.workers * 2, Scheduler::WorkSteal),
        (4, 4, Scheduler::Threaded),
    ] {
        let restored = EngineSnapshot::from_jsonl(&wire).expect("snapshot parses");
        let runtime = RuntimeOptions {
            shards,
            workers,
            queue_capacity: source.queue_capacity,
            scheduler,
            ..RuntimeOptions::default()
        };
        let mut tail_run =
            Replay::resume(prepared, &restored, ReplayOptions { runtime, ..options })
                .expect("configs match");
        tail_run.run_to_end();
        let tail = tail_run.finish();
        let stitched: Vec<_> =
            head.recommendations.iter().chain(tail.recommendations.iter()).cloned().collect();
        let identical = rec_log(&stitched).expect("log serializes") == reference_log;
        eprintln!(
            "reshard {} -> {shards} shards x {workers} workers ({}): {}",
            source.shards,
            scheduler.name(),
            if identical { "byte-identical" } else { "DIVERGENT" }
        );
        layouts.push(ReshardLayout { shards, workers, scheduler: scheduler.name(), identical });
    }
    let identical = layouts.iter().all(|l| l.identical);
    ReshardLeg {
        snapshot_at_event: pause,
        source_shards: source.shards,
        source_workers: source.workers,
        layouts,
        identical,
    }
}
