//! Replays a seeded simulated tweet stream through the `pmr-serve` engine
//! and reports serving throughput and query-latency percentiles.
//!
//! ```text
//! cargo run --release -p pmr-bench --bin bench_serve -- \
//!     --scale smoke --seed 42 --model bag --shards 4 --jobs 4 \
//!     --out results/BENCH_serve.json --rec-log serve-recs.jsonl
//! ```
//!
//! The recommendation log (`--rec-log`) carries no timing fields: it is
//! the determinism artifact the `serve-smoke` CI job byte-diffs across
//! shard and thread counts. All timing lives in `BENCH_serve.json`, which
//! is machine-specific and *excluded* from any determinism comparison.

use std::process::exit;
use std::time::Instant;

use serde::Serialize;

use pmr_bench::Scale;
use pmr_core::{PreparedCorpus, SplitConfig};
use pmr_serve::{rec_log, EngineConfig, Replay, ReplayOptions, RuntimeOptions, ServeModel};
use pmr_sim::{generate_corpus, SimConfig};

#[derive(Debug, Serialize)]
struct LatencySummary {
    count: u64,
    mean_us: u64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_us: u64,
}

#[derive(Debug, Serialize)]
struct ServeBaseline {
    benchmark: &'static str,
    scale: String,
    seed: u64,
    model: String,
    shards: usize,
    workers: usize,
    scheduler: &'static str,
    jobs: usize,
    k: usize,
    query_every: usize,
    window: usize,
    queue_capacity: usize,
    events: u64,
    queries: u64,
    candidates: u64,
    observes: u64,
    backpressure: u64,
    window_evictions: u64,
    /// Fold-in Gibbs sweeps run across all shards (0 for the gram
    /// families). Layout-dependent via the per-shard θ memo, which is fine
    /// here: this file is excluded from determinism comparisons.
    topic_foldin_iters: u64,
    /// Background-model (re)trains, including the epoch-0 bootstrap.
    topic_background_refreshes: u64,
    prep_s: f64,
    replay_s: f64,
    events_per_sec: f64,
    query_latency: LatencySummary,
}

fn usage(problem: &str) -> ! {
    eprintln!("bench_serve: {problem}");
    eprintln!(
        "usage: bench_serve [--scale smoke|default|full] [--seed N] [--model bag|graph|topic] \
         [--shards N] [--workers N] [--scheduler threaded|worksteal] [--jobs N] [--k N] \
         [--query-every N] [--window N] [--queue N] [--refresh N] [--out PATH] [--rec-log PATH]"
    );
    exit(2);
}

fn main() {
    let mut scale = Scale::Smoke;
    let mut seed: u64 = 42;
    let mut model = String::from("bag");
    let mut shards: usize = 4;
    let mut workers: usize = RuntimeOptions::default().workers;
    let mut scheduler = RuntimeOptions::default().scheduler;
    let mut jobs: usize = 1;
    let mut k: usize = 10;
    let mut query_every: usize = 25;
    let mut window: usize = 128;
    let mut queue: usize = 1024;
    let mut refresh: u64 = 0;
    let mut out = String::from("results/BENCH_serve.json");
    let mut rec_log_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| usage(&format!("{flag} requires a value")));
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                scale = Scale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale {v:?}")));
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| usage("--seed wants a number"))
            }
            "--model" => model = value("--model"),
            "--shards" => {
                shards =
                    value("--shards").parse().unwrap_or_else(|_| usage("--shards wants a number"))
            }
            "--workers" => {
                workers =
                    value("--workers").parse().unwrap_or_else(|_| usage("--workers wants a number"))
            }
            "--scheduler" => {
                let v = value("--scheduler");
                scheduler = pmr_serve::Scheduler::parse(&v)
                    .unwrap_or_else(|| usage(&format!("unknown scheduler {v:?}")));
            }
            "--jobs" => {
                jobs = value("--jobs").parse().unwrap_or_else(|_| usage("--jobs wants a number"))
            }
            "--k" => k = value("--k").parse().unwrap_or_else(|_| usage("--k wants a number")),
            "--query-every" => {
                query_every = value("--query-every")
                    .parse()
                    .unwrap_or_else(|_| usage("--query-every wants a number"))
            }
            "--window" => {
                window =
                    value("--window").parse().unwrap_or_else(|_| usage("--window wants a number"))
            }
            "--queue" => {
                queue = value("--queue").parse().unwrap_or_else(|_| usage("--queue wants a number"))
            }
            "--refresh" => {
                refresh =
                    value("--refresh").parse().unwrap_or_else(|_| usage("--refresh wants a number"))
            }
            "--out" => out = value("--out"),
            "--rec-log" => rec_log_path = Some(value("--rec-log")),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let serve_model = match model.as_str() {
        "bag" => ServeModel::Bag {
            weighting: pmr_bag::WeightingScheme::TFIDF,
            similarity: pmr_bag::BagSimilarity::Cosine,
            char_grams: false,
            n: 1,
            decay: 0.99,
        },
        "graph" => ServeModel::Graph {
            similarity: pmr_graph::GraphSimilarity::Value,
            char_grams: false,
            n: 1,
        },
        // Paper-style priors (α = 50/K, β = 0.01) at a serving-friendly
        // budget; `--refresh 0` (the default) keeps the epoch-0 background
        // for the whole replay.
        "topic" => ServeModel::Topic {
            topics: 16,
            alpha: 50.0 / 16.0,
            beta: 0.01,
            train_iterations: 50,
            foldin_iterations: 8,
            seed,
            decay: 0.99,
            background_refresh: refresh,
        },
        other => usage(&format!("unknown model {other:?} (bag|graph|topic)")),
    };

    // The injected-clock recorder feeds the `serve.query` histogram and
    // the engine's counters; without it every observation is a no-op.
    pmr_obs::install(pmr_obs::Recorder::monotonic());

    let prep_start = Instant::now();
    let corpus = generate_corpus(&SimConfig::preset(scale.preset(), seed));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    let options = ReplayOptions {
        config: EngineConfig { model: serve_model, window },
        runtime: RuntimeOptions {
            shards,
            workers,
            queue_capacity: queue,
            scheduler,
            ..RuntimeOptions::default()
        },
        k,
        query_every,
        jobs,
    };
    let mut replay = Replay::new(&prepared, options);
    let prep_s = prep_start.elapsed().as_secs_f64();

    let replay_start = Instant::now();
    replay.run_to_end();
    let outcome = replay.finish();
    let replay_s = replay_start.elapsed().as_secs_f64();

    let metrics = pmr_obs::snapshot().expect("recorder is installed");
    let empty =
        pmr_obs::HistogramSnapshot { count: 0, sum_us: 0, min_us: 0, max_us: 0, buckets: vec![] };
    let latency = metrics.histogram("serve.query").unwrap_or(&empty);
    let baseline = ServeBaseline {
        benchmark: "serve",
        scale: format!("{scale:?}").to_lowercase(),
        seed,
        model,
        shards,
        workers,
        scheduler: scheduler.name(),
        jobs,
        k,
        query_every,
        window,
        queue_capacity: queue,
        events: outcome.events,
        queries: outcome.queries,
        candidates: metrics.counter("serve.candidates"),
        observes: metrics.counter("serve.observes"),
        backpressure: metrics.counter("serve.backpressure"),
        window_evictions: metrics.counter("serve.window_evictions"),
        topic_foldin_iters: metrics.counter("serve.topic.foldin_iters"),
        topic_background_refreshes: metrics.counter("serve.topic.background_refresh"),
        prep_s,
        replay_s,
        events_per_sec: outcome.events as f64 / replay_s,
        query_latency: LatencySummary {
            count: latency.count,
            mean_us: latency.mean().as_micros() as u64,
            p50_us: latency.quantile_us(0.5),
            p90_us: latency.quantile_us(0.9),
            p99_us: latency.quantile_us(0.99),
            p999_us: latency.quantile_us(0.999),
            max_us: latency.max_us,
        },
    };

    if let Some(path) = rec_log_path {
        let log = rec_log(&outcome.recommendations).expect("recommendation log serializes");
        if let Some(parent) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(parent).expect("rec-log directory is creatable");
        }
        std::fs::write(&path, log).expect("rec-log file is writable");
        eprintln!("wrote {path} ({} recommendations)", outcome.recommendations.len());
    }

    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("output directory is creatable");
    }
    std::fs::write(&out, json + "\n").expect("baseline file is writable");
    eprintln!("wrote {out}");
    eprintln!(
        "  {} events in {replay_s:.2}s ({:.0} events/s), {} queries, \
         p50 {}µs p99 {}µs",
        baseline.events,
        baseline.events_per_sec,
        baseline.queries,
        baseline.query_latency.p50_us,
        baseline.query_latency.p99_us
    );
}
