//! Regenerates **Table 7**: the most effective configuration per
//! representation model and representation source (highest mean MAP across
//! all user types — we rank by All-Users MAP, which averages the same
//! per-user APs).
//!
//! Accepts the shared harness flags (`--help` lists them); when the sweep
//! is not cached yet, `--jobs N` fans it across N worker threads.

use pmr_bench::{HarnessOptions, SweepCache};
use pmr_core::{ModelFamily, RepresentationSource};

fn main() {
    let opts = HarnessOptions::from_env();
    let cache = SweepCache::load_or_run(&opts).expect("sweep failed");

    println!("Table 7: best configuration per model × representation source\n");
    for family in ModelFamily::EVALUATED {
        println!("--- {} ---", family.name());
        for source in RepresentationSource::ALL {
            match cache.best_config(family, source) {
                Some(best) => {
                    let map = cache.group_map(best, pmr_sim::usertype::UserGroup::All);
                    println!(
                        "  {:<3} {:<40} (MAP {map:.3})",
                        source.name(),
                        best.config.describe()
                    );
                }
                None => println!("  {:<3} (no measurement)", source.name()),
            }
        }
    }
}
