//! Measures the impact-ordered retrieval layer against exhaustive kernel
//! scoring on the simulated corpus and writes `BENCH_retrieval.json`.
//!
//! ```text
//! cargo run --release -p pmr-bench --bin bench_retrieval -- \
//!     --scale smoke --seed 42 --k 10 --shortlist 48 \
//!     --out results/BENCH_retrieval.json
//! ```
//!
//! The benchmark builds one global candidate pool (the union of every
//! user's test documents under a shared TF-IDF vectorizer) and one
//! [`ImpactIndex`] over it, then for every user × bag similarity:
//!
//! 1. scores the whole pool exhaustively through the [`ScoringKernel`]
//!    (the reference ranking and the reference timing),
//! 2. re-runs retrieval at [`Budget::Full`] and asserts the rescored
//!    output is **byte-identical** to the exhaustive scores,
//! 3. re-runs at the pruned `--shortlist` budget and reports recall@k of
//!    the pruned-with-rescore top-k against the exhaustive top-k. The
//!    shortlist is a pure function of the model vector, not of the
//!    similarity, so the pruned path issues **one** index query per model
//!    and rescores it under all three similarities; the query cost is
//!    amortized evenly across them in the per-similarity timings.
//!
//! Timing fields are machine-specific; the recall and byte-identity
//! fields are deterministic. The JSON is *excluded* from the sweep's
//! byte-stability gate (see EXPERIMENTS.md). Raw log-4 histogram bucket
//! counts for the retrieval timers are embedded so latency quantiles can
//! be recomputed offline at full resolution.

use std::process::exit;
use std::time::Instant;

use serde::Serialize;

use pmr_bag::{
    AggregationFunction, BagSimilarity, IndexedVectorizer, ScoringKernel, SparseVector,
    WeightingScheme,
};
use pmr_bench::Scale;
use pmr_core::eval::tie_break_key;
use pmr_core::retrieval::{retrieve_and_rescore, Budget, ImpactIndex};
use pmr_core::{rank_cmp, GramKind, PreparedCorpus, RepresentationSource, SplitConfig};
use pmr_sim::{generate_corpus, SimConfig, TweetId};

const SIMILARITIES: [BagSimilarity; 3] =
    [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard];

#[derive(Debug, Serialize)]
struct SimilarityReport {
    similarity: String,
    /// Total exhaustive kernel-scoring time over all users, seconds.
    exhaustive_s: f64,
    /// Total pruned retrieval time (index query + shortlist rescore).
    wand_s: f64,
    /// `exhaustive_s / wand_s`.
    speedup: f64,
    /// Mean recall@k of the pruned top-k against the exhaustive top-k.
    recall_mean: f64,
    /// Worst per-user recall@k at the pruned budget.
    recall_min: f64,
    /// Whether every full-budget retrieval reproduced the exhaustive
    /// scores bit-for-bit (hard-asserted; recorded for the artifact).
    full_coverage_identical: bool,
    /// Mean recall@k at the full budget (must be exactly 1.0).
    recall_full: f64,
}

#[derive(Debug, Serialize)]
struct HistogramDump {
    count: u64,
    sum_us: u64,
    min_us: u64,
    max_us: u64,
    p50_us: u64,
    p99_us: u64,
    /// Raw per-bucket counts aligned with `pmr_obs::BUCKET_BOUNDS_US`
    /// (final element = overflow), for offline quantile recomputation.
    buckets: Vec<u64>,
}

#[derive(Debug, Serialize)]
struct RetrievalBaseline {
    benchmark: &'static str,
    scale: String,
    seed: u64,
    k: usize,
    shortlist: usize,
    users: usize,
    pool_docs: usize,
    index_terms: usize,
    index_build_s: f64,
    per_similarity: Vec<SimilarityReport>,
    /// Aggregate candidate-scoring speedup: Σ exhaustive / Σ wand.
    aggregate_speedup: f64,
    /// Worst recall@k across every user × similarity at the pruned budget.
    recall_min: f64,
    /// `retrieval.*` counters from the pruned runs.
    candidates: u64,
    pruned: u64,
    rescored: u64,
    timers: std::collections::BTreeMap<String, HistogramDump>,
}

fn usage(problem: &str) -> ! {
    eprintln!("bench_retrieval: {problem}");
    eprintln!(
        "usage: bench_retrieval [--scale smoke|default|full] [--seed N] [--k N] \
         [--shortlist N] [--out PATH]"
    );
    exit(2);
}

/// Top-k pool positions under the shared ranking contract.
fn top_k(scores: &[f64], keys: &[u32], k: usize) -> Vec<u32> {
    let mut order: Vec<u32> = (0..scores.len() as u32).collect();
    order.sort_by(|&a, &b| {
        rank_cmp(scores[a as usize], &keys[a as usize], scores[b as usize], &keys[b as usize])
    });
    order.truncate(k);
    order
}

/// |a ∩ b| / |a| for equally-sized top-k sets (1.0 for empty pools).
fn recall(reference: &[u32], candidate: &[u32]) -> f64 {
    if reference.is_empty() {
        return 1.0;
    }
    let mut sorted = candidate.to_vec();
    sorted.sort_unstable();
    let hits = reference.iter().filter(|p| sorted.binary_search(p).is_ok()).count();
    hits as f64 / reference.len() as f64
}

fn main() {
    let mut scale = Scale::Smoke;
    let mut seed: u64 = 42;
    let mut k: usize = 10;
    let mut shortlist: usize = 48;
    let mut out = String::from("results/BENCH_retrieval.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| usage(&format!("{flag} requires a value")));
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                scale = Scale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale {v:?}")));
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| usage("--seed wants a number"))
            }
            "--k" => k = value("--k").parse().unwrap_or_else(|_| usage("--k wants a number")),
            "--shortlist" => {
                shortlist = value("--shortlist")
                    .parse()
                    .unwrap_or_else(|_| usage("--shortlist wants a number"))
            }
            "--out" => out = value("--out"),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    pmr_obs::install(pmr_obs::Recorder::monotonic());

    let corpus = generate_corpus(&SimConfig::preset(scale.preset(), seed));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    let table = prepared.gram_table(GramKind::Token, 1);
    let source = RepresentationSource::R;

    // The global candidate pool: every user's test documents, deduplicated,
    // in ascending tweet order; the shared vectorizer is fitted on the
    // union of every user's training documents so user models and pool
    // documents live in one vector space.
    let users: Vec<_> = prepared.split.users().collect();
    let mut pool_ids: Vec<TweetId> = Vec::new();
    let mut train_union: Vec<TweetId> = Vec::new();
    for &user in &users {
        if let Some(user_split) = prepared.split.user(user) {
            pool_ids.extend(user_split.test_docs());
        }
        train_union.extend(prepared.split.train_ids(&prepared.corpus, user, source));
    }
    pool_ids.sort_unstable();
    pool_ids.dedup();
    train_union.sort_unstable();
    train_union.dedup();

    let vectorizer =
        IndexedVectorizer::fit(WeightingScheme::TFIDF, train_union.iter().map(|&id| table.doc(id)));
    let pool: Vec<SparseVector> =
        pool_ids.iter().map(|&id| vectorizer.transform(table.doc(id))).collect();
    let keys: Vec<u32> = pool_ids.iter().map(|&id| tie_break_key(id.0)).collect();

    let build_start = Instant::now();
    let index = ImpactIndex::build(&pool);
    let index_build_s = build_start.elapsed().as_secs_f64();

    // Per-user Sum-aggregated TF-IDF models over source R train docs.
    let models: Vec<SparseVector> = users
        .iter()
        .map(|&user| {
            let train = prepared.split.train_ids(&prepared.corpus, user, source);
            let vectors: Vec<SparseVector> =
                train.iter().map(|&id| vectorizer.transform(table.doc(id))).collect();
            AggregationFunction::Sum.aggregate(&vectors, &[])
        })
        .collect();

    let k_eff = k.min(pool.len());
    let n_sims = SIMILARITIES.len();
    let mut exhaustive_s = [0.0f64; 3];
    let mut rescore_s = [0.0f64; 3];
    let mut recall_sum = [0.0f64; 3];
    let mut recall_min = [1.0f64; 3];
    let mut recall_full_sum = [0.0f64; 3];
    let mut query_s = 0.0f64;
    for model in &models {
        let kernels: Vec<ScoringKernel> =
            SIMILARITIES.iter().map(|&sim| ScoringKernel::new(sim, model)).collect();

        // One shortlist per model, shared by all three rescorers.
        let t0 = Instant::now();
        let short = index.query(model, &pool, &keys, Budget::TopK { shortlist });
        query_s += t0.elapsed().as_secs_f64();

        for (si, kernel) in kernels.iter().enumerate() {
            let t1 = Instant::now();
            let exact = kernel.score_many(&pool);
            exhaustive_s[si] += t1.elapsed().as_secs_f64();
            let reference = top_k(&exact, &keys, k_eff);

            // Full coverage: must reproduce the exhaustive scores exactly.
            let full = retrieve_and_rescore(&index, kernel, model, &pool, &keys, Budget::Full);
            let identical = full.iter().zip(&exact).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(
                identical,
                "{}: full-budget retrieval diverged from exhaustive",
                SIMILARITIES[si].name()
            );
            recall_full_sum[si] += recall(&reference, &top_k(&full, &keys, k_eff));

            // Pruned budget: zero-fill + exact rescore of the shortlist.
            let t2 = Instant::now();
            let mut pruned_scores = vec![0.0f64; pool.len()];
            kernel.score_positions(&pool, &short.positions, &mut pruned_scores);
            rescore_s[si] += t2.elapsed().as_secs_f64();
            let r = recall(&reference, &top_k(&pruned_scores, &keys, k_eff));
            recall_sum[si] += r;
            recall_min[si] = recall_min[si].min(r);
        }
    }

    let n = models.len().max(1) as f64;
    let mut per_similarity = Vec::new();
    let mut total_exhaustive_s = 0.0f64;
    let mut global_recall_min = 1.0f64;
    for (si, sim) in SIMILARITIES.iter().enumerate() {
        let recall_full = recall_full_sum[si] / n;
        assert!(
            (recall_full - 1.0).abs() < f64::EPSILON,
            "{}: recall@{k_eff} at full coverage must be exactly 1.0, got {recall_full}",
            sim.name()
        );
        let wand_s = rescore_s[si] + query_s / n_sims as f64;
        total_exhaustive_s += exhaustive_s[si];
        global_recall_min = global_recall_min.min(recall_min[si]);
        per_similarity.push(SimilarityReport {
            similarity: sim.name().to_string(),
            exhaustive_s: exhaustive_s[si],
            wand_s,
            speedup: exhaustive_s[si] / wand_s.max(f64::MIN_POSITIVE),
            recall_mean: recall_sum[si] / n,
            recall_min: recall_min[si],
            full_coverage_identical: true,
            recall_full,
        });
    }
    let total_wand_s = query_s + rescore_s.iter().sum::<f64>();

    let metrics = pmr_obs::snapshot().expect("recorder is installed");
    let timers: std::collections::BTreeMap<String, HistogramDump> =
        ["retrieval.index_build", "retrieval.query", "retrieval.rescore"]
            .iter()
            .filter_map(|name| {
                let h = metrics.histogram(name)?;
                Some((
                    name.to_string(),
                    HistogramDump {
                        count: h.count,
                        sum_us: h.sum_us,
                        min_us: h.min_us,
                        max_us: h.max_us,
                        p50_us: h.quantile_us(0.5),
                        p99_us: h.quantile_us(0.99),
                        buckets: h.buckets.clone(),
                    },
                ))
            })
            .collect();

    let baseline = RetrievalBaseline {
        benchmark: "retrieval",
        scale: format!("{scale:?}").to_lowercase(),
        seed,
        k: k_eff,
        shortlist,
        users: users.len(),
        pool_docs: pool.len(),
        index_terms: index.terms(),
        index_build_s,
        per_similarity,
        aggregate_speedup: total_exhaustive_s / total_wand_s.max(f64::MIN_POSITIVE),
        recall_min: global_recall_min,
        candidates: metrics.counter("retrieval.candidates"),
        pruned: metrics.counter("retrieval.pruned"),
        rescored: metrics.counter("retrieval.rescored"),
        timers,
    };

    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("output directory is creatable");
    }
    std::fs::write(&out, json + "\n").expect("baseline file is writable");
    eprintln!("wrote {out}");
    eprintln!(
        "  pool {} docs, {} users, shortlist {}: aggregate speedup {:.1}x, worst recall@{} {:.3}",
        baseline.pool_docs,
        baseline.users,
        baseline.shortlist,
        baseline.aggregate_speedup,
        baseline.k,
        baseline.recall_min,
    );
    for s in &baseline.per_similarity {
        eprintln!(
            "  {:>20}: exhaustive {:.3}s, wand {:.3}s ({:.1}x), recall mean {:.3} min {:.3}",
            s.similarity, s.exhaustive_s, s.wand_s, s.speedup, s.recall_mean, s.recall_min
        );
    }
}
