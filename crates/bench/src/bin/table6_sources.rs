//! Regenerates **Table 6**: the performance of all 13 representation
//! sources over the 4 user types, as min/mean/max MAP across every
//! configuration of the nine models, plus the per-user-type average.
//!
//! Accepts the shared harness flags (`--help` lists them); when the sweep
//! is not cached yet, `--jobs N` fans it across N worker threads.

use pmr_bench::{HarnessOptions, SweepCache};
use pmr_core::eval::MapSummary;
use pmr_core::RepresentationSource;
use pmr_sim::usertype::UserGroup;

fn main() {
    let opts = HarnessOptions::from_env();
    let cache = SweepCache::load_or_run(&opts).expect("sweep failed");

    println!("Table 6: Min/Mean/Max MAP of the 13 representation sources over the 4 user types\n");
    print!("{:<10} {:<9}", "Group", "Stat");
    for source in RepresentationSource::ALL {
        print!("{:>7}", source.name());
    }
    println!("{:>9}", "Average");
    for group in [UserGroup::All, UserGroup::IS, UserGroup::BU, UserGroup::IP] {
        let summaries: Vec<MapSummary> =
            RepresentationSource::ALL.iter().map(|&s| cache.source_summary(s, group)).collect();
        for (stat, pick) in [
            ("Min MAP", &(|s: &MapSummary| s.min) as &dyn Fn(&MapSummary) -> f64),
            ("Mean MAP", &|s: &MapSummary| s.mean),
            ("Max MAP", &|s: &MapSummary| s.max),
        ] {
            print!("{:<10} {:<9}", group.name(), stat);
            let mut sum = 0.0;
            for s in &summaries {
                let v = pick(s);
                sum += v;
                print!("{v:>7.3}");
            }
            println!("{:>9.3}", sum / summaries.len() as f64);
        }
    }

    // The ranking of individual sources by mean MAP for All Users — the
    // basis of the paper's "use R alone" conclusion.
    println!("\nIndividual sources ranked by Mean MAP (All Users):");
    let mut ranked: Vec<(RepresentationSource, f64)> = RepresentationSource::ALL
        .into_iter()
        .map(|s| (s, cache.source_summary(s, UserGroup::All).mean))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    for (i, (source, mean)) in ranked.iter().enumerate() {
        println!("  {:>2}. {:<3} {mean:.3}", i + 1, source.name());
    }
}
