//! Regenerates **Table 3**: the most frequent languages of the corpus,
//! identified with the paper's pipeline — clean every tweet of Twitter
//! markup, pool per user, detect the user's prevalent language, assign all
//! of the user's tweets to it.
//!
//! Accepts the shared harness flags (`--help` lists them); `--jobs` is
//! accepted but has no effect here, since no sweep runs.

use pmr_bench::HarnessOptions;
use pmr_sim::generate_corpus;
use pmr_sim::stats::language_distribution;

fn main() {
    let opts = HarnessOptions::from_env();
    let corpus = generate_corpus(&opts.sim_config());
    let rows = language_distribution(&corpus);

    println!(
        "Table 3: Most frequent languages (simulated corpus, seed {}, scale {})",
        opts.seed,
        opts.scale.name()
    );
    println!("{:<14} {:>12} {:>20}", "Language", "Total Tweets", "Relative Frequency");
    let mut covered = 0.0;
    for row in rows.iter().take(10) {
        println!(
            "{:<14} {:>12} {:>19.2}%",
            row.language.name(),
            row.tweets,
            row.relative_frequency * 100.0
        );
        covered += row.relative_frequency;
    }
    println!();
    println!(
        "Top languages collectively cover {:.0}% of all {} tweets \
         (paper: 91% of 2.07M).",
        covered * 100.0,
        corpus.len()
    );
}
