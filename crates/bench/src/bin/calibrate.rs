//! Internal: times representative configurations to calibrate sweep cost.
//! Accepts the shared harness flags (`--help` lists them), including
//! `--jobs N` (worker threads for the sweep the calibration extrapolates).
use pmr_bag::{BagSimilarity, WeightingScheme};
use pmr_bench::HarnessOptions;
use pmr_core::config::AggKind;
use pmr_core::experiment::ExperimentRunner;
use pmr_core::{ModelConfiguration, RepresentationSource};
use pmr_graph::GraphSimilarity;
use pmr_sim::usertype::UserGroup;
use pmr_topics::PoolingScheme;
use std::time::Instant;

fn main() {
    let opts = HarnessOptions::from_env();
    let prepared = opts.prepare_corpus().expect("corpus is well-formed");
    let runner = ExperimentRunner::new(&prepared);
    let ro = opts.runner_options();
    let configs: Vec<(&str, ModelConfiguration)> = vec![
        (
            "TN n=3 tfidf",
            ModelConfiguration::Bag {
                char_grams: false,
                n: 3,
                weighting: WeightingScheme::TFIDF,
                aggregation: AggKind::Centroid,
                similarity: BagSimilarity::Cosine,
            },
        ),
        (
            "CN n=4 tf",
            ModelConfiguration::Bag {
                char_grams: true,
                n: 4,
                weighting: WeightingScheme::TF,
                aggregation: AggKind::Centroid,
                similarity: BagSimilarity::Cosine,
            },
        ),
        (
            "TNG n=3",
            ModelConfiguration::Graph {
                char_grams: false,
                n: 3,
                similarity: GraphSimilarity::Value,
            },
        ),
        (
            "CNG n=4",
            ModelConfiguration::Graph {
                char_grams: true,
                n: 4,
                similarity: GraphSimilarity::Value,
            },
        ),
        (
            "LDA K=200 UP",
            ModelConfiguration::Lda {
                topics: 200,
                iterations: 2000,
                pooling: PoolingScheme::UP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "LDA K=200 NP",
            ModelConfiguration::Lda {
                topics: 200,
                iterations: 2000,
                pooling: PoolingScheme::NP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "LLDA K=200 UP",
            ModelConfiguration::Llda {
                topics: 200,
                iterations: 2000,
                pooling: PoolingScheme::UP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "BTM K=200 UP",
            ModelConfiguration::Btm {
                topics: 200,
                pooling: PoolingScheme::UP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "BTM K=200 NP",
            ModelConfiguration::Btm {
                topics: 200,
                pooling: PoolingScheme::NP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "HDP UP",
            ModelConfiguration::Hdp {
                beta: 0.1,
                pooling: PoolingScheme::UP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "HDP NP",
            ModelConfiguration::Hdp {
                beta: 0.1,
                pooling: PoolingScheme::NP,
                aggregation: AggKind::Centroid,
            },
        ),
        (
            "HLDA",
            ModelConfiguration::Hlda {
                alpha: 10.0,
                beta: 0.1,
                gamma: 0.5,
                aggregation: AggKind::Centroid,
            },
        ),
    ];
    for (name, cfg) in configs {
        let t = Instant::now();
        let r = runner.run(&cfg, RepresentationSource::E, UserGroup::All, &ro);
        println!("{name:<16} wall={:.2}s map={:.3}", t.elapsed().as_secs_f64(), r.map);
    }
}
