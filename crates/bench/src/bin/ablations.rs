//! Ablations for the design choices called out in DESIGN.md §7:
//!
//! 1. pooling scheme (NP/UP/HP) for a topic model;
//! 2. n-gram size for all four context-based models;
//! 3. graph similarity measure;
//! 4. retweet-signal strength (the simulator's γ) — how corpus-level
//!    interest alignment drives every content-based model's headroom;
//! 5. seed sensitivity of the headline comparison.
//!
//! Accepts the shared harness flags (`--help` lists them); `--jobs N` sets
//! the worker-thread count used by the underlying runs.

use pmr_bag::{BagSimilarity, WeightingScheme};
use pmr_bench::HarnessOptions;
use pmr_core::config::AggKind;
use pmr_core::experiment::ExperimentRunner;
use pmr_core::{ModelConfiguration, PreparedCorpus, RepresentationSource, SplitConfig};
use pmr_graph::GraphSimilarity;
use pmr_sim::generate_corpus;
use pmr_sim::usertype::UserGroup;
use pmr_topics::PoolingScheme;

fn main() {
    let opts = HarnessOptions::from_env();
    let runner_opts = opts.runner_options();
    let prepared = opts.prepare_corpus().expect("corpus is well-formed");
    let runner = ExperimentRunner::new(&prepared);
    let map = |cfg: &ModelConfiguration| {
        runner.run(cfg, RepresentationSource::R, UserGroup::All, &runner_opts).map
    };

    println!("=== Ablation 1: pooling scheme (LDA K=50 on R) ===");
    for pooling in PoolingScheme::ALL {
        let cfg = ModelConfiguration::Lda {
            topics: 50,
            iterations: 1_000,
            pooling,
            aggregation: AggKind::Centroid,
        };
        println!("  {:<3} MAP {:.3}", pooling.name(), map(&cfg));
    }

    println!("\n=== Ablation 2: n-gram size (source R) ===");
    for n in 1..=3usize {
        let cfg =
            ModelConfiguration::Graph { char_grams: false, n, similarity: GraphSimilarity::Value };
        println!("  TNG n={n} MAP {:.3}", map(&cfg));
    }
    for n in 2..=4usize {
        let cfg = ModelConfiguration::Graph {
            char_grams: true,
            n,
            similarity: GraphSimilarity::Containment,
        };
        println!("  CNG n={n} MAP {:.3}", map(&cfg));
    }
    for n in 1..=3usize {
        let cfg = ModelConfiguration::Bag {
            char_grams: false,
            n,
            weighting: WeightingScheme::TFIDF,
            aggregation: AggKind::Centroid,
            similarity: BagSimilarity::Cosine,
        };
        println!("  TN  n={n} MAP {:.3}", map(&cfg));
    }

    println!("\n=== Ablation 3: graph similarity (TNG n=3 on R) ===");
    for sim in
        [GraphSimilarity::Containment, GraphSimilarity::Value, GraphSimilarity::NormalizedValue]
    {
        let cfg = ModelConfiguration::Graph { char_grams: false, n: 3, similarity: sim };
        println!("  {:<4} MAP {:.3}", sim.name(), map(&cfg));
    }

    println!("\n=== Ablation 4: retweet-signal strength γ (TN TF-IDF on R) ===");
    for gamma in [4.0, 8.0, 12.0, 16.0] {
        let mut sim_cfg = opts.sim_config();
        sim_cfg.retweet_gamma = gamma;
        let corpus = generate_corpus(&sim_cfg);
        let prepared_g =
            PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
        let runner_g = ExperimentRunner::new(&prepared_g);
        let cfg = ModelConfiguration::Bag {
            char_grams: false,
            n: 1,
            weighting: WeightingScheme::TFIDF,
            aggregation: AggKind::Centroid,
            similarity: BagSimilarity::Cosine,
        };
        let m = runner_g.run(&cfg, RepresentationSource::R, UserGroup::All, &runner_opts).map;
        let ran = runner_g.random_map(UserGroup::All, &runner_opts);
        println!("  γ={gamma:<4} MAP {m:.3} (RAN {ran:.3}, lift {:+.3})", m - ran);
    }

    println!("\n=== Ablation 5: seed sensitivity (TNG n=3 VS vs TN TF-IDF on R) ===");
    for seed in [1u64, 2, 3] {
        let mut o = opts.clone();
        o.seed = seed;
        let prepared_s = o.prepare_corpus().expect("corpus is well-formed");
        let runner_s = ExperimentRunner::new(&prepared_s);
        let tng = ModelConfiguration::Graph {
            char_grams: false,
            n: 3,
            similarity: GraphSimilarity::Value,
        };
        let tn = ModelConfiguration::Bag {
            char_grams: false,
            n: 1,
            weighting: WeightingScheme::TFIDF,
            aggregation: AggKind::Centroid,
            similarity: BagSimilarity::Cosine,
        };
        let m_tng = runner_s.run(&tng, RepresentationSource::R, UserGroup::All, &runner_opts).map;
        let m_tn = runner_s.run(&tn, RepresentationSource::R, UserGroup::All, &runner_opts).map;
        println!("  seed {seed}: TNG {m_tng:.3} vs TN {m_tn:.3} (Δ {:+.3})", m_tng - m_tn);
    }
}
