//! Measures the sweep hot path before/after the shared feature cache and
//! indexed scoring kernel, and writes a machine-readable baseline to
//! `results/BENCH_kernel.json` so future PRs have a perf trajectory.
//!
//! ```text
//! cargo run --release -p pmr-bench --bin bench_kernel -- \
//!     --out results/BENCH_kernel.json \
//!     --sweep-before-s 71.4 --sweep-after-s 23.0
//! ```
//!
//! The micro comparisons (gram extraction, vectorize, scoring) are
//! measured in-process; the smoke-sweep wall times are passed in, since
//! the "before" number requires the pre-change build.

use std::time::Instant;

use serde::Serialize;

use pmr_bag::{
    AggregationFunction, BagSimilarity, BagVectorizer, IndexedVectorizer, ScoringKernel,
    SparseVector, WeightingScheme,
};
use pmr_core::{GramKind, GramTable};
use pmr_sim::TweetId;
use pmr_text::char_ngrams;

/// ns/op for `old` (reference path) vs `new` (cached/indexed path).
#[derive(Debug, Serialize)]
struct Comparison {
    old_ns_per_op: f64,
    new_ns_per_op: f64,
    speedup: f64,
}

impl Comparison {
    fn of(old_ns_per_op: f64, new_ns_per_op: f64) -> Comparison {
        Comparison { old_ns_per_op, new_ns_per_op, speedup: old_ns_per_op / new_ns_per_op }
    }
}

#[derive(Debug, Serialize)]
struct SweepWall {
    command: String,
    before_s: f64,
    after_s: f64,
    speedup: f64,
}

#[derive(Debug, Serialize)]
struct Baseline {
    benchmark: &'static str,
    units: &'static str,
    gram_extraction_char3: Comparison,
    vectorize_fit_tfidf: Comparison,
    vectorize_transform_tfidf: Comparison,
    score_cs: Comparison,
    score_js: Comparison,
    score_gjs: Comparison,
    /// `null` unless both `--sweep-before-s` and `--sweep-after-s` are
    /// passed (the vendored serde derive has no skip attributes).
    smoke_sweep_bag_families: Option<SweepWall>,
}

/// A deterministic pseudo-tweet corpus (same generator as the benches).
fn sample_texts(n: usize) -> Vec<String> {
    let words = [
        "rust", "borrow", "checker", "tweet", "graph", "topic", "model", "ranking", "cosine",
        "sparse", "vector", "gibbs", "sample", "corpus", "retweet", "follow", "user", "feed",
    ];
    (0..n)
        .map(|i| {
            (0..12).map(|j| words[(i * 7 + j * 13) % words.len()]).collect::<Vec<_>>().join(" ")
        })
        .collect()
}

/// Mean ns per call of `op` over `iters` timed repetitions.
fn time_ns<O, F: FnMut() -> O>(iters: u32, mut op: F) -> f64 {
    // One warm-up call keeps allocator and cache effects out of the first
    // measured repetition.
    std::hint::black_box(op());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(op());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let mut out = String::from("results/BENCH_kernel.json");
    let mut before_s: Option<f64> = None;
    let mut after_s: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} requires a value"));
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--sweep-before-s" => {
                before_s = Some(value("--sweep-before-s").parse().expect("a number"))
            }
            "--sweep-after-s" => {
                after_s = Some(value("--sweep-after-s").parse().expect("a number"))
            }
            other => panic!("unknown flag {other} (--out, --sweep-before-s, --sweep-after-s)"),
        }
    }

    let texts = sample_texts(200);
    let grams: Vec<Vec<String>> = texts.iter().map(|t| char_ngrams(&t.to_lowercase(), 3)).collect();
    let table = GramTable::from_docs(GramKind::Char, 3, grams.iter());
    let docs = texts.len();

    let gram_extraction_char3 = Comparison::of(
        time_ns(200, || {
            texts.iter().map(|t| char_ngrams(&t.to_lowercase(), 3).len()).sum::<usize>()
        }) / docs as f64,
        time_ns(200, || (0..docs).map(|i| table.doc(TweetId(i as u32)).len()).sum::<usize>())
            / docs as f64,
    );

    let id_docs: Vec<&[u32]> = (0..docs).map(|i| table.doc(TweetId(i as u32))).collect();
    let by_string = BagVectorizer::fit(WeightingScheme::TFIDF, grams.iter());
    let by_id = IndexedVectorizer::fit(WeightingScheme::TFIDF, id_docs.iter());
    let vectorize_fit_tfidf = Comparison::of(
        time_ns(100, || BagVectorizer::fit(WeightingScheme::TFIDF, grams.iter()).dimensionality()),
        time_ns(100, || {
            IndexedVectorizer::fit(WeightingScheme::TFIDF, id_docs.iter()).dimensionality()
        }),
    );
    let vectorize_transform_tfidf = Comparison::of(
        time_ns(100, || grams.iter().map(|d| by_string.transform(d).nnz()).sum::<usize>())
            / docs as f64,
        time_ns(100, || id_docs.iter().map(|d| by_id.transform(d).nnz()).sum::<usize>())
            / docs as f64,
    );

    let vectors: Vec<SparseVector> = grams.iter().map(|g| by_string.transform(g)).collect();
    let model = AggregationFunction::Sum.aggregate(&vectors, &[]);
    let probe: Vec<&SparseVector> = vectors.iter().take(100).collect();
    let score = |sim: BagSimilarity| {
        let kernel = ScoringKernel::new(sim, &model);
        Comparison::of(
            time_ns(200, || probe.iter().map(|d| sim.compare(&model, d)).sum::<f64>())
                / probe.len() as f64,
            time_ns(200, || probe.iter().map(|d| kernel.score(d)).sum::<f64>())
                / probe.len() as f64,
        )
    };

    let baseline = Baseline {
        benchmark: "kernel",
        units: "ns_per_op",
        gram_extraction_char3,
        vectorize_fit_tfidf,
        vectorize_transform_tfidf,
        score_cs: score(BagSimilarity::Cosine),
        score_js: score(BagSimilarity::Jaccard),
        score_gjs: score(BagSimilarity::GeneralizedJaccard),
        smoke_sweep_bag_families: match (before_s, after_s) {
            (Some(before_s), Some(after_s)) => Some(SweepWall {
                command: "run_sweep --families TN,CN --sources all (scale smoke, jobs 1)".into(),
                before_s,
                after_s,
                speedup: before_s / after_s,
            }),
            _ => None,
        },
    };

    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("output directory is creatable");
    }
    std::fs::write(&out, json + "\n").expect("baseline file is writable");
    eprintln!("wrote {out}");
    eprintln!(
        "  gram extraction (char-3): {:.1}x  vectorize transform: {:.1}x  \
         CS: {:.1}x  JS: {:.1}x  GJS: {:.1}x",
        baseline.gram_extraction_char3.speedup,
        baseline.vectorize_transform_tfidf.speedup,
        baseline.score_cs.speedup,
        baseline.score_js.speedup,
        baseline.score_gjs.speedup
    );
}
