//! Regenerates **Table 2**: dataset statistics for each user group —
//! outgoing tweets (TR), retweets (R), incoming tweets (E) and followers'
//! tweets (F), with min/mean/max per user.
//!
//! Accepts the shared harness flags (`--help` lists them); `--jobs` is
//! accepted but has no effect here, since no sweep runs.

use pmr_bench::HarnessOptions;
use pmr_sim::stats::Table2;
use pmr_sim::usertype::{partition_users, UserGroup};
use pmr_sim::{generate_corpus, GroupStats};

fn main() {
    let opts = HarnessOptions::from_env();
    let corpus = generate_corpus(&opts.sim_config());
    let partition = partition_users(&corpus);
    let table = Table2::compute(&corpus, &partition);

    println!(
        "Table 2: Statistics for each user group (simulated corpus, seed {}, scale {})",
        opts.seed,
        opts.scale.name()
    );
    println!("{:<24} {:>10} {:>10} {:>10} {:>10}", "", "IS", "BU", "IP", "All Users");
    let cols: Vec<&GroupStats> = [UserGroup::IS, UserGroup::BU, UserGroup::IP, UserGroup::All]
        .iter()
        .map(|&g| table.group(g))
        .collect();
    let row = |label: &str, f: &dyn Fn(&GroupStats) -> String| {
        println!(
            "{:<24} {:>10} {:>10} {:>10} {:>10}",
            label,
            f(cols[0]),
            f(cols[1]),
            f(cols[2]),
            f(cols[3])
        );
    };
    row("Users", &|g| g.users.to_string());
    row("Outgoing tweets (TR)", &|g| g.outgoing.total.to_string());
    row("  Minimum per user", &|g| g.outgoing.min.to_string());
    row("  Mean per user", &|g| format!("{:.0}", g.outgoing.mean));
    row("  Maximum per user", &|g| g.outgoing.max.to_string());
    row("Retweets (R)", &|g| g.retweets.total.to_string());
    row("  Minimum per user", &|g| g.retweets.min.to_string());
    row("  Mean per user", &|g| format!("{:.0}", g.retweets.mean));
    row("  Maximum per user", &|g| g.retweets.max.to_string());
    row("Incoming tweets (E)", &|g| g.incoming.total.to_string());
    row("  Minimum per user", &|g| g.incoming.min.to_string());
    row("  Mean per user", &|g| format!("{:.0}", g.incoming.mean));
    row("  Maximum per user", &|g| g.incoming.max.to_string());
    row("Followers' tweets (F)", &|g| g.followers_tweets.total.to_string());
    row("  Minimum per user", &|g| g.followers_tweets.min.to_string());
    row("  Mean per user", &|g| format!("{:.0}", g.followers_tweets.mean));
    row("  Maximum per user", &|g| g.followers_tweets.max.to_string());
    println!();
    println!("Total tweets in corpus: {}", corpus.len());
}
