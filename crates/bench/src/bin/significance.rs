//! Statistical significance of the paper's headline comparisons, computed
//! from the cached sweep's per-user APs (paired by user, as in the paper's
//! p < 0.05 statements):
//!
//! * TNG vs TN (the paper: TNG's dominance is significant);
//! * TN vs CN and TNG vs CNG (token vs character);
//! * BTM vs LDA (the strongest topic model vs the baseline topic model);
//! * TN vs BTM (context-based vs context-agnostic).
//!
//! For each pair the *best* configuration per family on the chosen source
//! is compared (mirroring a best-vs-best reading), along with a
//! mean-over-configurations comparison.
//!
//! Accepts the shared harness flags (`--help` lists them); when the sweep
//! is not cached yet, `--jobs N` fans it across N worker threads.

use std::collections::HashMap;

use pmr_bench::{HarnessOptions, SweepCache};
use pmr_core::significance::{paired_randomization_test, wilcoxon_signed_rank};
use pmr_core::{ModelFamily, RepresentationSource};
use pmr_sim::usertype::UserGroup;
use pmr_sim::UserId;

fn main() {
    let opts = HarnessOptions::from_env();
    let cache = SweepCache::load_or_run(&opts).expect("sweep failed");
    let source = RepresentationSource::R;
    let members = cache.group_members(UserGroup::All);

    // Per-user AP of a family: averaged over all its configurations on the
    // source (the robust reading), plus the best-config version.
    let family_user_aps = |family: ModelFamily, best_only: bool| -> HashMap<UserId, f64> {
        let mut acc: HashMap<UserId, (f64, usize)> = HashMap::new();
        let results: Vec<_> = if best_only {
            cache.best_config(family, source).into_iter().collect()
        } else {
            cache
                .sweep
                .results
                .iter()
                .filter(|r| r.family == family && r.source == source)
                .collect()
        };
        for r in results {
            for &(u, ap) in &r.per_user_ap {
                let e = acc.entry(u).or_insert((0.0, 0));
                e.0 += ap;
                e.1 += 1;
            }
        }
        acc.into_iter().map(|(u, (sum, n))| (u, sum / n as f64)).collect()
    };

    let pairs = [
        (ModelFamily::TNG, ModelFamily::TN),
        (ModelFamily::TN, ModelFamily::CN),
        (ModelFamily::TNG, ModelFamily::CNG),
        (ModelFamily::BTM, ModelFamily::LDA),
        (ModelFamily::TN, ModelFamily::BTM),
        (ModelFamily::CNG, ModelFamily::CN),
    ];
    println!("Paired significance on source {source} (All Users, n = {})\n", members.len());
    for best_only in [false, true] {
        println!(
            "--- {} ---",
            if best_only { "best configuration per family" } else { "mean over configurations" }
        );
        println!(
            "{:<12} {:>9} {:>12} {:>12} {:>6}",
            "pair", "Δ mean AP", "perm p", "wilcoxon p", "sig?"
        );
        for (fa, fb) in pairs {
            let apa = family_user_aps(fa, best_only);
            let apb = family_user_aps(fb, best_only);
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for &u in &members {
                if let (Some(&x), Some(&y)) = (apa.get(&u), apb.get(&u)) {
                    xs.push(x);
                    ys.push(y);
                }
            }
            let perm = paired_randomization_test(&xs, &ys, 10_000, opts.seed);
            let wil = wilcoxon_signed_rank(&xs, &ys);
            println!(
                "{:<12} {:>+9.3} {:>12.4} {:>12.4} {:>6}",
                format!("{} vs {}", fa.name(), fb.name()),
                perm.mean_difference,
                perm.p_value,
                wil.p_value,
                if perm.significant() { "yes" } else { "no" }
            );
        }
        println!();
    }
}
