//! Regenerates **Figure 7**: time efficiency of the nine models —
//! (i) training time TTime and (ii) testing time ETime, as min/avg/max
//! across all configurations and sources of the sweep.
//!
//! As in the paper, TTime covers building the user models of all users
//! (including the one-off topic-model training `M(s)`), and ETime covers
//! scoring and ranking every user's test set.
//!
//! Accepts the shared harness flags (`--help` lists them); when the sweep
//! is not cached yet, `--jobs N` fans it across N worker threads. Note
//! that per-run timings are noisier under a parallel sweep — prefer
//! `--jobs 1` when regenerating this figure from scratch.

use pmr_bench::{HarnessOptions, SweepCache};
use pmr_core::timing::human;
use pmr_core::ModelFamily;

fn main() {
    let opts = HarnessOptions::from_env();
    opts.install_observability();
    let cache = SweepCache::load_or_run(&opts).expect("sweep failed");
    opts.finish_observability();

    println!("Figure 7(i): Training time (TTime) per model — min / avg / max\n");
    println!("{:<6} {:>12} {:>12} {:>12}", "Model", "min", "avg", "max");
    for family in ModelFamily::EVALUATED {
        let s = cache.sweep.train_time_stats(family);
        println!(
            "{:<6} {:>12} {:>12} {:>12}",
            family.name(),
            human(s.min),
            human(s.avg),
            human(s.max)
        );
    }
    println!("\nFigure 7(ii): Testing time (ETime) per model — min / avg / max\n");
    println!("{:<6} {:>12} {:>12} {:>12}", "Model", "min", "avg", "max");
    for family in ModelFamily::EVALUATED {
        let s = cache.sweep.test_time_stats(family);
        println!(
            "{:<6} {:>12} {:>12} {:>12}",
            family.name(),
            human(s.min),
            human(s.avg),
            human(s.max)
        );
    }
    println!(
        "\nNote: Gibbs/EM iteration counts were scaled by {} relative to the paper's\n\
         1,000–2,000 sweeps; relative (not absolute) times are the reproduction target.",
        cache.iteration_scale
    );
}
