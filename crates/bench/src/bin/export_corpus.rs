//! Exports a generated corpus as JSON Lines — one object per tweet plus a
//! header object with users and follow edges — so the simulated dataset can
//! be consumed outside this workspace (notebooks, other implementations).
//!
//! ```text
//! cargo run --release -p pmr-bench --bin export_corpus -- --scale smoke --out results
//! ```
//!
//! Accepts the shared harness flags (`--help` lists them); `--jobs` is
//! accepted but has no effect here, since no sweep runs.

use std::io::{BufWriter, Write};

use pmr_bench::HarnessOptions;
use pmr_sim::generate_corpus;

fn main() -> std::io::Result<()> {
    let opts = HarnessOptions::from_env();
    let corpus = generate_corpus(&opts.sim_config());
    std::fs::create_dir_all(&opts.out_dir)?;
    let path = opts.out_dir.join(format!("corpus_{}_{}.jsonl", opts.scale.name(), opts.seed));
    let mut out = BufWriter::new(std::fs::File::create(&path)?);

    // Header: users and their follow edges.
    for user in &corpus.users {
        let followees: Vec<u32> = corpus.graph.followees(user.id).iter().map(|v| v.0).collect();
        let record = serde_json::json!({
            "type": "user",
            "id": user.id.0,
            "handle": user.handle,
            "language": user.language.name(),
            "evaluated": !user.is_background,
            "followees": followees,
        });
        writeln!(out, "{record}")?;
    }
    // Body: tweets. Ground-truth topic mixtures are deliberately *not*
    // exported — downstream consumers should see exactly what a
    // representation model sees.
    for tweet in &corpus.tweets {
        let record = serde_json::json!({
            "type": "tweet",
            "id": tweet.id.0,
            "author": tweet.author.0,
            "timestamp": tweet.timestamp,
            "retweet_of": tweet.retweet_of.map(|t| t.0),
            "text": tweet.text,
        });
        writeln!(out, "{record}")?;
    }
    out.flush()?;
    println!(
        "exported {} users and {} tweets to {}",
        corpus.users.len(),
        corpus.len(),
        path.display()
    );
    Ok(())
}
