//! Regenerates **Figures 3–6**: effectiveness (min/mean/max MAP) of the 9
//! representation models over the 8 figure sources, for a user group
//! (`--group all|is|bu|ip`; default prints all four figures), with the
//! CHR and RAN baselines.
//!
//! Accepts the shared harness flags (`--help` lists them); when the sweep
//! is not cached yet, `--jobs N` fans it across N worker threads.

use pmr_bench::{HarnessOptions, SweepCache};
use pmr_core::{ModelFamily, RepresentationSource};
use pmr_sim::usertype::UserGroup;

fn main() {
    let opts = HarnessOptions::from_env();
    let cache = SweepCache::load_or_run(&opts).expect("sweep failed");
    let groups: Vec<UserGroup> = match opts.group {
        Some(g) => vec![g],
        None => vec![UserGroup::All, UserGroup::IP, UserGroup::BU, UserGroup::IS],
    };
    for group in groups {
        let figure = match group {
            UserGroup::All => "Figure 3 (All Users)",
            UserGroup::IP => "Figure 4 (IP)",
            UserGroup::BU => "Figure 5 (BU)",
            UserGroup::IS => "Figure 6 (IS)",
        };
        let (chr, ran) = cache.baselines(group);
        println!("\n=== {figure}: MAP per model × source (min / mean / max over configs) ===");
        println!("Baselines: CHR = {chr:.3}, RAN = {ran:.3} (red line)\n");
        print!("{:<6}", "");
        for source in RepresentationSource::FIGURES {
            print!("{:>19}", source.name());
        }
        println!();
        for family in ModelFamily::EVALUATED {
            print!("{:<6}", family.name());
            for source in RepresentationSource::FIGURES {
                let s = cache.summary(family, source, group);
                print!("  {:>4.2}/{:>4.2}/{:>4.2}", s.min, s.mean, s.max);
            }
            println!();
        }
        // Per-model MAP deviation (robustness), averaged over the sources.
        println!("\nMAP deviation (max − min across configurations; lower = more robust):");
        for family in ModelFamily::EVALUATED {
            let devs: Vec<f64> = RepresentationSource::FIGURES
                .iter()
                .map(|&s| cache.summary(family, s, group).deviation())
                .collect();
            let avg = devs.iter().sum::<f64>() / devs.len() as f64;
            let max = devs.iter().cloned().fold(0.0f64, f64::max);
            println!("  {:<5} avg {avg:.3}, worst-source {max:.3}", family.name());
        }
    }
}
