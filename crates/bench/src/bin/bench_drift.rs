//! Measures online-vs-batch MAP drift for the serving engine's three
//! incremental model families (bag, graph, topic).
//!
//! ```text
//! cargo run --release -p pmr-bench --bin bench_drift -- \
//!     --scale smoke --seed 42 --out results/BENCH_drift.json
//! ```
//!
//! For each family the harness replays the event stream through
//! `pmr-serve` with `k = window`, so every answered query logs the user's
//! *entire* eligible candidate window with its online scores. It then
//! re-ranks the exact same candidate sets with a batch oracle — the same
//! incremental model type fed every original the user ever retweeted, with
//! no decay (for topic: the epoch-0 background, whose equivalence to batch
//! fold-in is pinned by a proptest in `pmr_core::incremental`) — and
//! reports both MAPs plus their difference. Relevance for a query at time
//! `now` is "the queried user retweets this original at a timestamp
//! strictly after `now`", the same future-retweet criterion the offline
//! harness uses.
//!
//! The drift number isolates what serving costs in ranking quality:
//! the online side sees only the causal prefix and forgets via decay,
//! the batch side sees the whole corpus undecayed. Everything else —
//! candidate sets, relevance labels, tie-breaking — is held identical.

use std::collections::BTreeMap;
use std::process::exit;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use pmr_bag::BagSimilarity;
use pmr_bench::Scale;
use pmr_core::eval::{average_precision, tie_break_key, ScoredDoc};
use pmr_core::{GramKind, OnlineGraphModel, OnlineProfile, PreparedCorpus, SplitConfig};
use pmr_serve::{
    precompute_features, EngineConfig, Replay, ReplayOptions, RuntimeOptions, ServeModel,
    TweetFeatures,
};
use pmr_sim::{generate_corpus, SimConfig, StreamEvent, Timestamp};
use pmr_topics::{TopicBackground, TopicProfile};

#[derive(Debug, Serialize)]
struct FamilyDrift {
    model: String,
    queries: u64,
    /// Queries with at least one relevant candidate in the logged window;
    /// only these contribute to either MAP (zero-relevance queries would
    /// add identical zeros to both sides).
    scored_queries: u64,
    online_map: f64,
    batch_map: f64,
    /// `online_map − batch_map`: negative when serving loses quality to
    /// prefix-only observation and decay.
    drift: f64,
    replay_s: f64,
}

#[derive(Debug, Serialize)]
struct DriftBaseline {
    benchmark: &'static str,
    scale: String,
    seed: u64,
    window: usize,
    query_every: usize,
    /// Topic background refresh cadence (0 = epoch-0 background throughout).
    refresh: u64,
    families: Vec<FamilyDrift>,
}

fn usage(problem: &str) -> ! {
    eprintln!("bench_drift: {problem}");
    eprintln!(
        "usage: bench_drift [--scale smoke|default|full] [--seed N] [--window N] \
         [--query-every N] [--refresh N] [--jobs N] [--out PATH]"
    );
    exit(2);
}

/// The serving configurations under measurement — the same defaults
/// `bench_serve` runs, one per incremental family.
fn families(seed: u64, refresh: u64) -> Vec<(&'static str, ServeModel)> {
    vec![
        (
            "bag",
            ServeModel::Bag {
                weighting: pmr_bag::WeightingScheme::TFIDF,
                similarity: BagSimilarity::Cosine,
                char_grams: false,
                n: 1,
                decay: 0.99,
            },
        ),
        (
            "graph",
            ServeModel::Graph {
                similarity: pmr_graph::GraphSimilarity::Value,
                char_grams: false,
                n: 1,
            },
        ),
        (
            "topic",
            ServeModel::Topic {
                topics: 16,
                alpha: 50.0 / 16.0,
                beta: 0.01,
                train_iterations: 50,
                foldin_iterations: 8,
                seed,
                decay: 0.99,
                background_refresh: refresh,
            },
        ),
    ]
}

/// The batch oracle: one undecayed model per queried user, fed every
/// original that user retweeted anywhere in the stream (the online models
/// observe exactly those documents, but only up to the query time and
/// through a decay factor).
enum BatchModel {
    Bag { profile: OnlineProfile, similarity: BagSimilarity },
    Graph(Box<OnlineGraphModel>),
    Topic { profile: TopicProfile, background: Arc<TopicBackground> },
}

impl BatchModel {
    fn fresh(model: &ServeModel, background: Option<&Arc<TopicBackground>>) -> BatchModel {
        match *model {
            ServeModel::Bag { similarity, .. } => {
                BatchModel::Bag { profile: OnlineProfile::new(1.0), similarity }
            }
            ServeModel::Graph { similarity, n, .. } => {
                BatchModel::Graph(Box::new(OnlineGraphModel::new(similarity, n)))
            }
            ServeModel::Topic { topics, .. } => BatchModel::Topic {
                profile: TopicProfile::new(1.0, topics),
                background: Arc::clone(background.expect("topic family trains a background")),
            },
        }
    }

    fn observe(&mut self, features: &TweetFeatures, thetas: &mut BTreeMap<u64, Vec<f32>>) {
        match (self, features) {
            (BatchModel::Bag { profile, .. }, TweetFeatures::Bag(unit)) => {
                profile.observe_unit(unit)
            }
            (BatchModel::Graph(graph), TweetFeatures::Graph(grams)) => graph.observe(grams),
            (BatchModel::Topic { profile, background }, TweetFeatures::Topic(doc)) => {
                let theta = thetas
                    .entry(doc.key)
                    .or_insert_with(|| background.fold_in(&doc.tokens, doc.key));
                profile.observe(theta);
            }
            _ => unreachable!("features are computed from the same model config"),
        }
    }

    fn score(&mut self, features: &TweetFeatures, thetas: &mut BTreeMap<u64, Vec<f32>>) -> f64 {
        match (self, features) {
            (BatchModel::Bag { profile, similarity }, TweetFeatures::Bag(unit)) => {
                similarity.compare(profile.vector(), unit)
            }
            (BatchModel::Graph(graph), TweetFeatures::Graph(grams)) => graph.score(grams),
            (BatchModel::Topic { profile, background }, TweetFeatures::Topic(doc)) => {
                let theta = thetas
                    .entry(doc.key)
                    .or_insert_with(|| background.fold_in(&doc.tokens, doc.key));
                profile.score(theta)
            }
            _ => unreachable!("features are computed from the same model config"),
        }
    }
}

/// Inputs shared by every family measurement.
struct DriftSetup<'a> {
    prepared: &'a PreparedCorpus,
    stream: &'a [StreamEvent],
    first_retweet: &'a BTreeMap<(u32, u32), Timestamp>,
    window: usize,
    query_every: usize,
    jobs: usize,
}

/// Measure one family: replay online, rebuild the batch oracle, re-rank.
fn measure(name: &str, model: ServeModel, setup: &DriftSetup) -> FamilyDrift {
    let &DriftSetup { prepared, stream, first_retweet, window, query_every, jobs } = setup;
    let options = ReplayOptions {
        config: EngineConfig { model, window },
        // `k = window`: the log must carry the full eligible candidate set,
        // not a top-k truncation, so the batch side re-ranks the same pool.
        runtime: RuntimeOptions::default(),
        k: window,
        query_every,
        jobs,
    };
    let replay_start = Instant::now();
    let outcome = Replay::run(prepared, options);
    let replay_s = replay_start.elapsed().as_secs_f64();

    let features = precompute_features(prepared, model, jobs);
    // The topic oracle scores against the epoch-0 background — the same
    // bootstrap model the replay starts from (and keeps, at --refresh 0).
    let background = model.online_topic().map(|(cfg, _, _)| {
        let table = prepared.gram_table(GramKind::Token, 1);
        let docs: Vec<&[pmr_text::vocab::TermId]> = features
            .iter()
            .filter_map(|f| match f.as_deref() {
                Some(TweetFeatures::Topic(doc)) => Some(doc.tokens.as_slice()),
                _ => None,
            })
            .collect();
        Arc::new(TopicBackground::train(&cfg, &docs, table.vocab_len(), 0))
    });

    // Build the batch models for every user the replay actually queried.
    let mut batch: BTreeMap<u32, BatchModel> = outcome
        .recommendations
        .iter()
        .map(|r| (r.user, BatchModel::fresh(&model, background.as_ref())))
        .collect();
    let mut thetas: BTreeMap<u64, Vec<f32>> = BTreeMap::new();
    for event in stream {
        if let Some(original) = event.retweet_of {
            if let (Some(model), Some(features)) =
                (batch.get_mut(&event.author.0), features[original.index()].as_deref())
            {
                model.observe(features, &mut thetas);
            }
        }
    }

    let mut online_sum = 0.0;
    let mut batch_sum = 0.0;
    let mut scored_queries = 0u64;
    for rec in &outcome.recommendations {
        let relevant = |item: &pmr_serve::RecItem| {
            first_retweet.get(&(rec.user, item.tweet)).is_some_and(|&at| at > rec.now)
        };
        if !rec.items.iter().any(&relevant) {
            continue;
        }
        let online: Vec<ScoredDoc> = rec
            .items
            .iter()
            .map(|item| ScoredDoc {
                score: item.score,
                relevant: relevant(item),
                tie_break: tie_break_key(item.tweet),
            })
            .collect();
        let user_model = batch.get_mut(&rec.user).expect("every queried user has a batch model");
        let rescored: Vec<ScoredDoc> = rec
            .items
            .iter()
            .map(|item| ScoredDoc {
                score: features[item.tweet as usize]
                    .as_deref()
                    .map(|f| user_model.score(f, &mut thetas))
                    .unwrap_or(0.0),
                relevant: relevant(item),
                tie_break: tie_break_key(item.tweet),
            })
            .collect();
        online_sum += average_precision(&online);
        batch_sum += average_precision(&rescored);
        scored_queries += 1;
    }
    let online_map = if scored_queries > 0 { online_sum / scored_queries as f64 } else { 0.0 };
    let batch_map = if scored_queries > 0 { batch_sum / scored_queries as f64 } else { 0.0 };
    let drift = FamilyDrift {
        model: name.to_owned(),
        queries: outcome.queries,
        scored_queries,
        online_map,
        batch_map,
        drift: online_map - batch_map,
        replay_s,
    };
    eprintln!(
        "  {name}: {} queries ({} scored), online MAP {:.3}, batch MAP {:.3}, \
         drift {:+.3} ({replay_s:.2}s replay)",
        drift.queries, drift.scored_queries, drift.online_map, drift.batch_map, drift.drift
    );
    drift
}

fn main() {
    let mut scale = Scale::Smoke;
    let mut seed: u64 = 42;
    let mut window: usize = 64;
    let mut query_every: usize = 25;
    let mut refresh: u64 = 0;
    let mut jobs: usize = 1;
    let mut out = String::from("results/BENCH_drift.json");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| usage(&format!("{flag} requires a value")));
        match arg.as_str() {
            "--scale" => {
                let v = value("--scale");
                scale = Scale::parse(&v).unwrap_or_else(|| usage(&format!("unknown scale {v:?}")));
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| usage("--seed wants a number"))
            }
            "--window" => {
                window =
                    value("--window").parse().unwrap_or_else(|_| usage("--window wants a number"))
            }
            "--query-every" => {
                query_every = value("--query-every")
                    .parse()
                    .unwrap_or_else(|_| usage("--query-every wants a number"))
            }
            "--refresh" => {
                refresh =
                    value("--refresh").parse().unwrap_or_else(|_| usage("--refresh wants a number"))
            }
            "--jobs" => {
                jobs = value("--jobs").parse().unwrap_or_else(|_| usage("--jobs wants a number"))
            }
            "--out" => out = value("--out"),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let corpus = generate_corpus(&SimConfig::preset(scale.preset(), seed));
    let prepared =
        PreparedCorpus::new(corpus, SplitConfig::default()).expect("corpus is well-formed");
    let stream = prepared.corpus.event_stream();

    // (user, original) → earliest retweet time; the stream is time-ordered,
    // so the first occurrence wins.
    let mut first_retweet: BTreeMap<(u32, u32), Timestamp> = BTreeMap::new();
    for event in &stream {
        if let Some(original) = event.retweet_of {
            first_retweet.entry((event.author.0, original.0)).or_insert(event.at);
        }
    }

    eprintln!("drift: scale {}, seed {seed}, window {window}", scale.name());
    let setup = DriftSetup {
        prepared: &prepared,
        stream: &stream,
        first_retweet: &first_retweet,
        window,
        query_every,
        jobs,
    };
    let results: Vec<FamilyDrift> = families(seed, refresh)
        .into_iter()
        .map(|(name, model)| measure(name, model, &setup))
        .collect();

    let baseline = DriftBaseline {
        benchmark: "drift",
        scale: scale.name().to_owned(),
        seed,
        window,
        query_every,
        refresh,
        families: results,
    };
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("output directory is creatable");
    }
    std::fs::write(&out, json + "\n").expect("baseline file is writable");
    eprintln!("wrote {out}");
}
