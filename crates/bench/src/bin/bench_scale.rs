//! Measures the scale pipeline: events/s and peak RSS of streaming vs.
//! materialized generation across population tiers, plus a serving leg
//! that pushes a power-law stream through `pmr-serve` and checks the
//! determinism-under-backpressure contract.
//!
//! ```text
//! cargo run --release -p pmr-bench --bin bench_scale -- \
//!     --tiers 1000,10000,100000 --seed 42 --out results/BENCH_scale.json
//! ```
//!
//! Peak RSS (`VmHWM`) is a per-process high-water mark, so every
//! `(tier, mode)` measurement runs in its own child process (re-invoking
//! this binary with `--probe`); the parent only aggregates JSON lines.
//! Numbers here are machine-specific and **excluded** from paper-figure
//! comparisons — see EXPERIMENTS.md.

use std::process::{exit, Command};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use pmr_serve::{ingest_stream, rec_log, EngineConfig, IngestOptions, RuntimeOptions, ServeModel};
use pmr_sim::{ScaleConfig, StreamGenerator};

/// One `(tier, mode)` measurement, produced by a probe child process.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Probe {
    users: u64,
    mode: String,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    /// 0 when the platform exposes no RSS accounting.
    peak_rss_bytes: u64,
    /// FNV-1a over every event's fields and text — streaming and
    /// materialized probes of the same tier must agree.
    stream_hash: u64,
}

#[derive(Debug, Serialize)]
struct TierReport {
    users: u64,
    events: u64,
    streaming: Probe,
    /// Absent above the materialization cap — the whole point of the
    /// streaming path is that these tiers cannot be materialized.
    materialized: Option<Probe>,
}

#[derive(Debug, Serialize)]
struct ServeReport {
    users: u64,
    events: u64,
    queries: u64,
    shard_layouts: Vec<usize>,
    queue_capacity: usize,
    /// `serve.backpressure` per layout.
    backpressure: Vec<u64>,
    rec_log_identical: bool,
    ingest_s: f64,
}

#[derive(Debug, Serialize)]
struct ScaleBaseline {
    benchmark: &'static str,
    seed: u64,
    chunk_events: usize,
    graph: String,
    tiers: Vec<TierReport>,
    serve: ServeReport,
}

fn usage(problem: &str) -> ! {
    eprintln!("bench_scale: {problem}");
    eprintln!(
        "usage: bench_scale [--tiers N,N,...] [--seed N] [--materialize-cap N] \
         [--serve-tier N] [--out PATH]"
    );
    exit(2);
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn fold_event(
    hash: &mut u64,
    at: u64,
    tweet: u32,
    author: u32,
    retweet_of: Option<u32>,
    text: &str,
) {
    fnv(hash, &at.to_le_bytes());
    fnv(hash, &tweet.to_le_bytes());
    fnv(hash, &author.to_le_bytes());
    fnv(hash, &retweet_of.map(|t| t.wrapping_add(1)).unwrap_or(0).to_le_bytes());
    fnv(hash, text.as_bytes());
}

/// Probe child: generate one tier in one mode, print a [`Probe`] JSON line.
fn run_probe(users: usize, seed: u64, mode: &str) -> ! {
    let start = Instant::now();
    let gen = StreamGenerator::plan(ScaleConfig::tier(users, seed));
    let mut hash = FNV_OFFSET;
    let events = match mode {
        "streaming" => {
            let mut count = 0u64;
            for rec in gen.events() {
                let e = rec.event;
                fold_event(
                    &mut hash,
                    e.at,
                    e.tweet.0,
                    e.author.0,
                    e.retweet_of.map(|t| t.0),
                    &rec.text,
                );
                count += 1;
            }
            count
        }
        "materialized" => {
            let corpus = gen.materialize();
            let stream = corpus.event_stream();
            for e in &stream {
                fold_event(
                    &mut hash,
                    e.at,
                    e.tweet.0,
                    e.author.0,
                    e.retweet_of.map(|t| t.0),
                    &corpus.tweet(e.tweet).text,
                );
            }
            stream.len() as u64
        }
        other => usage(&format!("unknown probe mode {other:?}")),
    };
    let wall_s = start.elapsed().as_secs_f64();
    let probe = Probe {
        users: users as u64,
        mode: mode.to_owned(),
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        peak_rss_bytes: pmr_obs::peak_rss_bytes().unwrap_or(0),
        stream_hash: hash,
    };
    println!("{}", serde_json::to_string(&probe).expect("probe serializes"));
    exit(0);
}

/// Spawn this binary as a probe child and parse its JSON line.
fn spawn_probe(users: u64, seed: u64, mode: &str) -> Probe {
    let exe = std::env::current_exe().expect("own executable path is known");
    let output = Command::new(exe)
        .args(["--probe", mode, "--users", &users.to_string(), "--seed", &seed.to_string()])
        .output()
        .expect("probe child spawns");
    if !output.status.success() {
        eprintln!("{}", String::from_utf8_lossy(&output.stderr));
        usage(&format!("probe ({users} users, {mode}) failed: {}", output.status));
    }
    let stdout = String::from_utf8(output.stdout).expect("probe output is UTF-8");
    let line = stdout.lines().last().unwrap_or_default();
    serde_json::from_str(line)
        .unwrap_or_else(|e| usage(&format!("probe ({users} users, {mode}) bad output: {e}")))
}

/// The serving leg: the same power-law stream through two shard layouts
/// with a deliberately tiny queue, in-process (RSS is not the point here).
fn run_serve_leg(users: u64, seed: u64) -> ServeReport {
    let gen = StreamGenerator::plan(ScaleConfig::tier(users as usize, seed));
    let config = EngineConfig {
        model: ServeModel::Graph {
            similarity: pmr_graph::GraphSimilarity::Value,
            char_grams: true,
            n: 3,
        },
        window: 128,
    };
    let layouts = vec![1usize, 4];
    let queue_capacity = 8;
    let start = Instant::now();
    let mut logs = Vec::new();
    let mut backpressure = Vec::new();
    let mut events = 0u64;
    let mut queries = 0u64;
    for &shards in &layouts {
        pmr_obs::install(pmr_obs::Recorder::monotonic());
        let outcome = ingest_stream(
            &gen,
            IngestOptions {
                config,
                runtime: RuntimeOptions { shards, queue_capacity, ..RuntimeOptions::default() },
                k: 10,
                query_every: 25,
                jobs: 2,
            },
        )
        .expect("graph-model ingest succeeds");
        let metrics = pmr_obs::snapshot().expect("recorder is installed");
        backpressure.push(metrics.counter("serve.backpressure"));
        let _ = pmr_obs::uninstall();
        events = outcome.events;
        queries = outcome.queries;
        logs.push(rec_log(&outcome.recommendations).expect("recommendation log serializes"));
    }
    let rec_log_identical = logs.windows(2).all(|w| w[0] == w[1]);
    ServeReport {
        users,
        events,
        queries,
        shard_layouts: layouts,
        queue_capacity,
        backpressure,
        rec_log_identical,
        ingest_s: start.elapsed().as_secs_f64(),
    }
}

fn main() {
    let mut tiers: Vec<u64> = vec![1_000, 10_000, 100_000];
    let mut seed: u64 = 42;
    let mut materialize_cap: u64 = 10_000;
    let mut serve_tier: u64 = 1_000;
    let mut out = String::from("results/BENCH_scale.json");
    let mut probe: Option<(String, u64)> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |flag: &str| args.next().unwrap_or_else(|| usage(&format!("{flag} requires a value")));
        match arg.as_str() {
            "--tiers" => {
                tiers = value("--tiers")
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage("--tiers wants numbers")))
                    .collect();
            }
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|_| usage("--seed wants a number"))
            }
            "--materialize-cap" => {
                materialize_cap = value("--materialize-cap")
                    .parse()
                    .unwrap_or_else(|_| usage("--materialize-cap wants a number"))
            }
            "--serve-tier" => {
                serve_tier = value("--serve-tier")
                    .parse()
                    .unwrap_or_else(|_| usage("--serve-tier wants a number"))
            }
            "--out" => out = value("--out"),
            "--probe" => {
                let mode = value("--probe");
                let mut users = 0u64;
                let mut pseed = seed;
                while let Some(a) = args.next() {
                    let mut v = |flag: &str| {
                        args.next().unwrap_or_else(|| usage(&format!("{flag} requires a value")))
                    };
                    match a.as_str() {
                        "--users" => {
                            users = v("--users")
                                .parse()
                                .unwrap_or_else(|_| usage("--users wants a number"))
                        }
                        "--seed" => {
                            pseed = v("--seed")
                                .parse()
                                .unwrap_or_else(|_| usage("--seed wants a number"))
                        }
                        other => usage(&format!("unknown probe flag {other}")),
                    }
                }
                if users == 0 {
                    usage("--probe needs --users");
                }
                probe = Some((mode, users));
                seed = pseed;
            }
            other => usage(&format!("unknown flag {other}")),
        }
    }
    if let Some((mode, users)) = probe {
        run_probe(users as usize, seed, &mode);
    }
    if tiers.is_empty() {
        usage("--tiers must name at least one tier");
    }

    let mut reports = Vec::new();
    for &users in &tiers {
        eprintln!("tier {users}: streaming probe…");
        let streaming = spawn_probe(users, seed, "streaming");
        let materialized = if users <= materialize_cap {
            eprintln!("tier {users}: materialized probe…");
            let m = spawn_probe(users, seed, "materialized");
            assert_eq!(
                m.stream_hash, streaming.stream_hash,
                "streaming and materialized probes disagree at {users} users"
            );
            assert_eq!(m.events, streaming.events);
            Some(m)
        } else {
            None
        };
        eprintln!(
            "tier {users}: {} events, {:.0} events/s streaming, peak RSS {:.1} MiB",
            streaming.events,
            streaming.events_per_sec,
            streaming.peak_rss_bytes as f64 / (1024.0 * 1024.0)
        );
        reports.push(TierReport { users, events: streaming.events, streaming, materialized });
    }

    eprintln!("serve leg at {serve_tier} users…");
    let serve = run_serve_leg(serve_tier, seed);
    assert!(serve.rec_log_identical, "shard layouts produced different recommendation logs");
    eprintln!(
        "serve leg: {} events, {} queries, backpressure {:?}, logs identical",
        serve.events, serve.queries, serve.backpressure
    );

    let reference = ScaleBaseline {
        benchmark: "scale",
        seed,
        chunk_events: ScaleConfig::tier(1_000, seed).chunk_events,
        graph: "power-law".to_owned(),
        tiers: reports,
        serve,
    };
    let json = serde_json::to_string_pretty(&reference).expect("baseline serializes");
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("output directory is creatable");
    }
    std::fs::write(&out, json + "\n").expect("baseline file is writable");
    eprintln!("wrote {out}");
}
