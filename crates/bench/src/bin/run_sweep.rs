//! Runs (and caches) the full configuration × source sweep that feeds
//! Figures 3–6, Table 6, Figure 7 and Table 7.
//!
//! ```text
//! cargo run --release -p pmr-bench --bin run_sweep -- --scale smoke
//! ```
//!
//! Results are cached under `results/sweep_<scale>_<seed>.json`; the figure
//! and table binaries load the cache (or trigger the sweep themselves). A
//! cache is only reused when its recorded options — scale, seed,
//! iteration scale and the `--families`/`--sources` filters — match the
//! request; anything else (including pre-metadata cache files) is
//! discarded and re-run.
//!
//! Accepts the shared harness flags (`--help` lists them). `--jobs N` fans
//! the sweep across N worker threads (default: all cores); the measurements
//! are byte-identical for every N because results are collected in
//! canonical (source, configuration) order and all randomness is seeded
//! per (user, document, configuration).
//!
//! `--journal PATH` writes a JSONL event journal and `--metrics-out PATH` a
//! metrics summary (counters, gauges, duration histograms) for the run —
//! both diagnostic artifacts, excluded from determinism comparisons. With
//! neither flag, observability stays uninstalled and the sweep output is
//! byte-identical to an uninstrumented build.

use pmr_bench::{HarnessOptions, SweepCache};
use pmr_sim::usertype::UserGroup;

fn main() {
    let opts = HarnessOptions::from_env();
    opts.install_observability();
    let cache = SweepCache::load_or_run(&opts).expect("sweep failed");
    opts.finish_observability();
    println!(
        "sweep complete: {} measurements at scale {} (seed {}, iter-scale {})",
        cache.sweep.results.len(),
        cache.scale,
        cache.seed,
        cache.iteration_scale
    );
    for group in UserGroup::ALL {
        let (chr, ran) = cache.baselines(group);
        println!(
            "  {:<9} {} users; baselines CHR={chr:.3} RAN={ran:.3}",
            group.name(),
            cache.group_members(group).len()
        );
    }
}
