//! Runs (and caches) the full configuration × source sweep that feeds
//! Figures 3–6, Table 6, Figure 7 and Table 7.
//!
//! ```text
//! cargo run --release -p pmr-bench --bin run_sweep -- --scale smoke
//! ```
//!
//! Results are cached under `results/sweep_<scale>_<seed>.json`; the figure
//! and table binaries load the cache (or trigger the sweep themselves).

use pmr_bench::{HarnessOptions, SweepCache};
use pmr_sim::usertype::UserGroup;

fn main() {
    let opts = HarnessOptions::from_env();
    let cache = SweepCache::load_or_run(&opts);
    println!(
        "sweep complete: {} measurements at scale {} (seed {}, iter-scale {})",
        cache.sweep.results.len(),
        cache.scale,
        cache.seed,
        cache.iteration_scale
    );
    for group in UserGroup::ALL {
        let (chr, ran) = cache.baselines(group);
        println!(
            "  {:<9} {} users; baselines CHR={chr:.3} RAN={ran:.3}",
            group.name(),
            cache.group_members(group).len()
        );
    }
}
