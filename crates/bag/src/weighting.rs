//! Weighting schemes and the corpus-fitted vectorizer.
//!
//! §3.2 of the paper defines three weighting schemes for bag models:
//!
//! * **BF** — boolean frequency: 1 if the n-gram occurs in the document;
//! * **TF** — term frequency: occurrences normalized by document length;
//! * **TF-IDF** — TF discounted by `idf(t) = log(|D| / (df(t) + 1))`.
//!
//! A [`BagVectorizer`] is fitted once on the training corpus of a
//! representation source (interning the n-gram dimensions and counting
//! document frequencies) and then transforms any document — training or
//! testing — into a [`SparseVector`] over the fitted dimensions; n-grams
//! unseen at fit time are dropped, exactly as in a trained vector-space
//! model.

use serde::{Deserialize, Serialize};

use pmr_text::vocab::{TermId, Vocabulary};

use crate::vector::SparseVector;

/// The three weighting schemes of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightingScheme {
    /// Boolean frequency.
    BF,
    /// Length-normalized term frequency.
    TF,
    /// TF · inverse document frequency.
    TFIDF,
}

impl WeightingScheme {
    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            WeightingScheme::BF => "BF",
            WeightingScheme::TF => "TF",
            WeightingScheme::TFIDF => "TF-IDF",
        }
    }
}

/// A corpus-fitted vectorizer for one bag model instantiation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BagVectorizer {
    weighting: WeightingScheme,
    vocab: Vocabulary,
    /// Document frequency per dimension.
    df: Vec<u32>,
    /// Number of fitted documents `|D|`.
    num_docs: usize,
}

impl BagVectorizer {
    /// Fit on the training documents of a representation source. Each
    /// document is its extracted n-gram list (token or character n-grams;
    /// the vectorizer is agnostic).
    pub fn fit<D, S>(weighting: WeightingScheme, docs: D) -> Self
    where
        D: IntoIterator,
        D::Item: AsRef<[S]>,
        S: AsRef<str>,
    {
        let mut vocab = Vocabulary::new();
        let mut df: Vec<u32> = Vec::new();
        let mut num_docs = 0usize;
        let mut seen_in_doc: Vec<usize> = Vec::new(); // doc-stamp per dim
        for doc in docs {
            num_docs += 1;
            for gram in doc.as_ref() {
                let id = vocab.add(gram.as_ref());
                if id as usize >= df.len() {
                    df.push(0);
                    seen_in_doc.push(0);
                }
                if seen_in_doc[id as usize] != num_docs {
                    seen_in_doc[id as usize] = num_docs;
                    df[id as usize] += 1;
                }
            }
        }
        BagVectorizer { weighting, vocab, df, num_docs }
    }

    /// The fitted weighting scheme.
    pub fn weighting(&self) -> WeightingScheme {
        self.weighting
    }

    /// Number of fitted dimensions (distinct n-grams).
    pub fn dimensionality(&self) -> usize {
        self.vocab.len()
    }

    /// Number of fitted documents.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// The inverse document frequency of a fitted dimension.
    pub fn idf(&self, id: TermId) -> f32 {
        ((self.num_docs as f64) / (self.df[id as usize] as f64 + 1.0)).ln() as f32
    }

    /// Transform a document (its n-gram list) into a sparse vector under the
    /// fitted vocabulary; unseen n-grams are dropped.
    pub fn transform<S: AsRef<str>>(&self, grams: &[S]) -> SparseVector {
        let n_d = grams.len();
        if n_d == 0 {
            return SparseVector::new();
        }
        // Occurrence counts over fitted dimensions.
        let mut counts: std::collections::HashMap<TermId, u32> = std::collections::HashMap::new();
        for g in grams {
            if let Some(id) = self.vocab.get(g.as_ref()) {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        let pairs: Vec<(TermId, f32)> = counts
            .into_iter()
            .map(|(id, f)| {
                let w = match self.weighting {
                    WeightingScheme::BF => 1.0,
                    WeightingScheme::TF => f as f32 / n_d as f32,
                    WeightingScheme::TFIDF => (f as f32 / n_d as f32) * self.idf(id),
                };
                (id, w)
            })
            .collect();
        SparseVector::from_pairs(pairs)
    }
}

/// A corpus-fitted vectorizer over *pre-interned* gram ids.
///
/// Functionally identical to [`BagVectorizer`], but fitted on documents
/// that are already sequences of global `TermId`s (from a shared gram
/// table) instead of strings. Fitting assigns dense *local* ids in
/// first-seen order over the documents — exactly the order a string
/// interner walking the same documents would produce — so the resulting
/// vectors are bit-for-bit identical to [`BagVectorizer`]'s while skipping
/// every string hash, comparison and allocation on the sweep's hot path.
#[derive(Debug, Clone)]
pub struct IndexedVectorizer {
    weighting: WeightingScheme,
    /// Global gram id → dense local dimension, in first-seen order;
    /// indexed by global id, [`UNSEEN`] marks grams not in the fit. A flat
    /// array (global vocabularies are dense and bounded by the shared gram
    /// table) turns every fit/transform lookup into an O(1) index.
    local: Vec<TermId>,
    /// Document frequency per local dimension.
    df: Vec<u32>,
    /// Number of fitted documents `|D|`.
    num_docs: usize,
}

/// Sentinel in [`IndexedVectorizer::local`] for global ids outside the fit.
const UNSEEN: TermId = TermId::MAX;

impl IndexedVectorizer {
    /// Fit on pre-interned training documents.
    pub fn fit<D>(weighting: WeightingScheme, docs: D) -> Self
    where
        D: IntoIterator,
        D::Item: AsRef<[TermId]>,
    {
        let mut local: Vec<TermId> = Vec::new();
        let mut df: Vec<u32> = Vec::new();
        let mut num_docs = 0usize;
        let mut seen_in_doc: Vec<usize> = Vec::new(); // doc-stamp per dim
        for doc in docs {
            num_docs += 1;
            for &gram in doc.as_ref() {
                let g = gram as usize;
                if g >= local.len() {
                    local.resize(g + 1, UNSEEN);
                }
                let id = if local[g] == UNSEEN {
                    let next = df.len() as TermId;
                    local[g] = next;
                    df.push(0);
                    seen_in_doc.push(0);
                    next
                } else {
                    local[g]
                };
                if seen_in_doc[id as usize] != num_docs {
                    seen_in_doc[id as usize] = num_docs;
                    df[id as usize] += 1;
                }
            }
        }
        IndexedVectorizer { weighting, local, df, num_docs }
    }

    /// The fitted weighting scheme.
    pub fn weighting(&self) -> WeightingScheme {
        self.weighting
    }

    /// Number of fitted dimensions (distinct grams).
    pub fn dimensionality(&self) -> usize {
        self.df.len()
    }

    /// Number of fitted documents.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// The inverse document frequency of a fitted local dimension.
    pub fn idf(&self, id: TermId) -> f32 {
        ((self.num_docs as f64) / (self.df[id as usize] as f64 + 1.0)).ln() as f32
    }

    /// Transform a pre-interned document into a sparse vector over the
    /// fitted local dimensions; grams unseen at fit time are dropped.
    ///
    /// Occurrences are counted by sorting the document's local ids and
    /// run-length encoding — no hashing. The counts (and hence weights)
    /// are identical to the hash-counted string path; only the order in
    /// which pairs reach the final sort differs, and that order is erased.
    pub fn transform(&self, grams: &[TermId]) -> SparseVector {
        let n_d = grams.len();
        if n_d == 0 {
            return SparseVector::new();
        }
        let mut ids: Vec<TermId> = Vec::with_capacity(n_d);
        for &gram in grams {
            if let Some(&id) = self.local.get(gram as usize) {
                if id != UNSEEN {
                    ids.push(id);
                }
            }
        }
        ids.sort_unstable();
        let mut pairs: Vec<(TermId, f32)> = Vec::with_capacity(ids.len());
        let mut i = 0;
        while i < ids.len() {
            let id = ids[i];
            let mut f = 0u32;
            while i < ids.len() && ids[i] == id {
                f += 1;
                i += 1;
            }
            let w = match self.weighting {
                WeightingScheme::BF => 1.0,
                WeightingScheme::TF => f as f32 / n_d as f32,
                WeightingScheme::TFIDF => (f as f32 / n_d as f32) * self.idf(id),
            };
            pairs.push((id, w));
        }
        SparseVector::from_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<String>> {
        let d = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        vec![d("a b a c"), d("b c"), d("a a a a")]
    }

    #[test]
    fn fit_counts_document_frequencies() {
        let v = BagVectorizer::fit(WeightingScheme::TF, docs());
        assert_eq!(v.dimensionality(), 3);
        assert_eq!(v.num_docs(), 3);
        let a = v.vocab.get("a").unwrap();
        let b = v.vocab.get("b").unwrap();
        let c = v.vocab.get("c").unwrap();
        assert_eq!(v.df[a as usize], 2);
        assert_eq!(v.df[b as usize], 2);
        assert_eq!(v.df[c as usize], 2);
    }

    #[test]
    fn bf_weights_are_binary() {
        let v = BagVectorizer::fit(WeightingScheme::BF, docs());
        let x = v.transform(&["a", "a", "b"]);
        let a = v.vocab.get("a").unwrap();
        let b = v.vocab.get("b").unwrap();
        assert_eq!(x.get(a), 1.0);
        assert_eq!(x.get(b), 1.0);
    }

    #[test]
    fn tf_weights_are_length_normalized() {
        let v = BagVectorizer::fit(WeightingScheme::TF, docs());
        let x = v.transform(&["a", "a", "b", "c"]);
        let a = v.vocab.get("a").unwrap();
        assert!((x.get(a) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn tfidf_discounts_ubiquitous_grams() {
        // "x" appears in every document, "y" in one.
        let d = |s: &str| s.split_whitespace().map(str::to_owned).collect::<Vec<_>>();
        let corpus = vec![d("x y"), d("x"), d("x"), d("x")];
        let v = BagVectorizer::fit(WeightingScheme::TFIDF, corpus);
        let x = v.transform(&["x", "y"]);
        let idx = v.vocab.get("x").unwrap();
        let idy = v.vocab.get("y").unwrap();
        assert!(
            x.get(idy) > x.get(idx),
            "rare gram must outweigh ubiquitous one: {} vs {}",
            x.get(idy),
            x.get(idx)
        );
        // idf(x) = ln(4/5) < 0: ubiquitous grams may go slightly negative,
        // as with the standard smoothed-IDF formula the paper uses.
        assert!(v.idf(idx) < 0.0);
        assert!(v.idf(idy) > 0.0);
    }

    #[test]
    fn unseen_grams_are_dropped() {
        let v = BagVectorizer::fit(WeightingScheme::TF, docs());
        let x = v.transform(&["zzz", "qqq"]);
        assert!(x.is_empty());
    }

    #[test]
    fn empty_document_transforms_to_empty_vector() {
        let v = BagVectorizer::fit(WeightingScheme::TF, docs());
        assert!(v.transform::<String>(&[]).is_empty());
    }

    #[test]
    fn scheme_names_match_the_paper() {
        assert_eq!(WeightingScheme::BF.name(), "BF");
        assert_eq!(WeightingScheme::TF.name(), "TF");
        assert_eq!(WeightingScheme::TFIDF.name(), "TF-IDF");
    }

    /// Intern string docs through a shared global vocabulary, the way the
    /// sweep's feature cache does.
    fn interned(docs: &[Vec<String>]) -> Vec<Vec<TermId>> {
        let mut vocab = Vocabulary::new();
        docs.iter().map(|d| d.iter().map(|g| vocab.intern(g)).collect()).collect()
    }

    #[test]
    fn indexed_vectorizer_matches_string_vectorizer_bitwise() {
        let string_docs = docs();
        let id_docs = interned(&string_docs);
        for weighting in [WeightingScheme::BF, WeightingScheme::TF, WeightingScheme::TFIDF] {
            let by_string = BagVectorizer::fit(weighting, string_docs.iter());
            let by_id = IndexedVectorizer::fit(weighting, id_docs.iter());
            assert_eq!(by_string.dimensionality(), by_id.dimensionality());
            assert_eq!(by_string.num_docs(), by_id.num_docs());
            for (sd, id) in string_docs.iter().zip(&id_docs) {
                let a = by_string.transform(sd);
                let b = by_id.transform(id);
                assert_eq!(a.entries().len(), b.entries().len());
                for (&(da, wa), &(db, wb)) in a.entries().iter().zip(b.entries()) {
                    assert_eq!(da, db, "{weighting:?}: local dimension ids must agree");
                    assert_eq!(
                        wa.to_bits(),
                        wb.to_bits(),
                        "{weighting:?}: weights must be bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_vectorizer_drops_unseen_global_ids() {
        let id_docs = interned(&docs());
        let v = IndexedVectorizer::fit(WeightingScheme::TF, id_docs.iter());
        assert!(v.transform(&[900, 901]).is_empty());
        assert!(v.transform(&[]).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Documents over a small alphabet so collisions (shared grams across
    /// docs) actually happen.
    fn arb_docs() -> impl Strategy<Value = Vec<Vec<String>>> {
        proptest::collection::vec(
            proptest::collection::vec((0u8..12).prop_map(|t| format!("t{t}")), 0..15),
            0..8,
        )
    }

    proptest! {
        #[test]
        fn indexed_fit_transform_equals_string_path(string_docs in arb_docs(), probe in proptest::collection::vec((0u8..14).prop_map(|t| format!("t{t}")), 0..15)) {
            let mut vocab = Vocabulary::new();
            let id_docs: Vec<Vec<TermId>> = string_docs
                .iter()
                .map(|d| d.iter().map(|g| vocab.intern(g)).collect())
                .collect();
            for weighting in [WeightingScheme::BF, WeightingScheme::TF, WeightingScheme::TFIDF] {
                let by_string = BagVectorizer::fit(weighting, string_docs.iter());
                let by_id = IndexedVectorizer::fit(weighting, id_docs.iter());
                // Probe docs may contain grams unseen at fit time ("t12",
                // "t13"), exercising the drop path.
                let probe_ids: Vec<TermId> = probe.iter().map(|g| vocab.intern(g)).collect();
                let a = by_string.transform(&probe);
                let b = by_id.transform(&probe_ids);
                prop_assert_eq!(a.entries().len(), b.entries().len());
                for (&(da, wa), &(db, wb)) in a.entries().iter().zip(b.entries()) {
                    prop_assert_eq!(da, db);
                    prop_assert_eq!(wa.to_bits(), wb.to_bits());
                }
            }
        }
    }
}
