//! Similarity measures between bag models (§3.2).
//!
//! * **CS** — cosine similarity;
//! * **JS** — set Jaccard over the supports (weights > 0 mean presence);
//!   the paper applies it only to BF-weighted vectors;
//! * **GJS** — generalized Jaccard `Σ min(w_a, w_b) / Σ max(w_a, w_b)`;
//!   applied only to TF/TF-IDF vectors. For BF weights GJS reduces to JS.

use serde::{Deserialize, Serialize};

use crate::vector::SparseVector;

/// The three bag similarity measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BagSimilarity {
    /// Cosine similarity.
    Cosine,
    /// Set Jaccard over supports.
    Jaccard,
    /// Weighted (generalized) Jaccard.
    GeneralizedJaccard,
}

impl BagSimilarity {
    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BagSimilarity::Cosine => "CS",
            BagSimilarity::Jaccard => "JS",
            BagSimilarity::GeneralizedJaccard => "GJS",
        }
    }

    /// Similarity between two vectors.
    pub fn compare(self, a: &SparseVector, b: &SparseVector) -> f64 {
        match self {
            BagSimilarity::Cosine => cosine(a, b),
            BagSimilarity::Jaccard => jaccard(a, b),
            BagSimilarity::GeneralizedJaccard => generalized_jaccard(a, b),
        }
    }
}

/// Cosine similarity; 0 when either vector is zero.
pub fn cosine(a: &SparseVector, b: &SparseVector) -> f64 {
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (a.dot(b) / (na * nb)) as f64
}

/// Set Jaccard over the positive supports.
pub fn jaccard(a: &SparseVector, b: &SparseVector) -> f64 {
    let mut intersection = 0usize;
    let mut union = 0usize;
    merge(a, b, |wa, wb| {
        let pa = wa > 0.0;
        let pb = wb > 0.0;
        if pa || pb {
            union += 1;
        }
        if pa && pb {
            intersection += 1;
        }
    });
    if union == 0 {
        0.0
    } else {
        intersection as f64 / union as f64
    }
}

/// Generalized Jaccard `Σ min / Σ max`. Defined for non-negative weights;
/// negative weights (possible under Rocchio, which the paper never pairs
/// with GJS) are clamped to zero.
pub fn generalized_jaccard(a: &SparseVector, b: &SparseVector) -> f64 {
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    merge(a, b, |wa, wb| {
        let wa = wa.max(0.0) as f64;
        let wb = wb.max(0.0) as f64;
        num += wa.min(wb);
        den += wa.max(wb);
    });
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Iterate over the union of dimensions, feeding `(w_a, w_b)` (0 when
/// absent) to the visitor.
fn merge<F: FnMut(f32, f32)>(a: &SparseVector, b: &SparseVector, mut visit: F) {
    let (ea, eb) = (a.entries(), b.entries());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ea.len() || j < eb.len() {
        match (ea.get(i), eb.get(j)) {
            (Some(&(da, wa)), Some(&(db, wb))) => match da.cmp(&db) {
                std::cmp::Ordering::Less => {
                    visit(wa, 0.0);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    visit(0.0, wb);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    visit(wa, wb);
                    i += 1;
                    j += 1;
                }
            },
            (Some(&(_, wa)), None) => {
                visit(wa, 0.0);
                i += 1;
            }
            (None, Some(&(_, wb))) => {
                visit(0.0, wb);
                j += 1;
            }
            (None, None) => unreachable!("loop condition guards this"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    #[test]
    fn cosine_identical_is_one() {
        let a = v(&[(0, 1.0), (1, 2.0)]);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert_eq!(cosine(&v(&[(0, 1.0)]), &v(&[(1, 1.0)])), 0.0);
        assert_eq!(cosine(&v(&[]), &v(&[(1, 1.0)])), 0.0);
    }

    #[test]
    fn jaccard_counts_supports() {
        let a = v(&[(0, 1.0), (1, 1.0), (2, 1.0)]);
        let b = v(&[(1, 1.0), (2, 1.0), (3, 1.0)]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-9); // 2 / 4
    }

    #[test]
    fn jaccard_ignores_negative_weights() {
        let a = v(&[(0, 1.0), (1, -1.0)]);
        let b = v(&[(0, 1.0), (1, 1.0)]);
        // Dim 1 is "absent" in a (weight ≤ 0), so intersection = {0},
        // union = {0, 1}.
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn gjs_equals_js_for_binary_weights() {
        let a = v(&[(0, 1.0), (1, 1.0), (2, 1.0)]);
        let b = v(&[(1, 1.0), (2, 1.0), (3, 1.0)]);
        assert!((generalized_jaccard(&a, &b) - jaccard(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn gjs_weighs_magnitudes() {
        let a = v(&[(0, 2.0)]);
        let b = v(&[(0, 1.0)]);
        assert!((generalized_jaccard(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_vectors_yield_zero_everywhere() {
        let e = v(&[]);
        for s in [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard]
        {
            assert_eq!(s.compare(&e, &e), 0.0);
        }
    }

    #[test]
    fn names_match_the_paper() {
        assert_eq!(BagSimilarity::Cosine.name(), "CS");
        assert_eq!(BagSimilarity::Jaccard.name(), "JS");
        assert_eq!(BagSimilarity::GeneralizedJaccard.name(), "GJS");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_vec() -> impl Strategy<Value = SparseVector> {
        proptest::collection::vec((0u32..30, 0.01f32..5.0), 0..20)
            .prop_map(SparseVector::from_pairs)
    }

    proptest! {
        #[test]
        fn similarities_are_symmetric(a in arb_vec(), b in arb_vec()) {
            for s in [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard] {
                prop_assert!((s.compare(&a, &b) - s.compare(&b, &a)).abs() < 1e-6);
            }
        }

        #[test]
        fn similarities_are_bounded(a in arb_vec(), b in arb_vec()) {
            for s in [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard] {
                let x = s.compare(&a, &b);
                prop_assert!((-1e-6..=1.0 + 1e-6).contains(&x), "{x}");
            }
        }

        #[test]
        fn self_similarity_is_maximal(a in arb_vec()) {
            prop_assume!(!a.is_empty());
            for s in [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard] {
                prop_assert!((s.compare(&a, &a) - 1.0).abs() < 1e-5);
            }
        }
    }
}
