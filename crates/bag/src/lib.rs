//! # pmr-bag
//!
//! Vector-space ("bag") representation models — the local context-aware
//! family of the paper's taxonomy (§3).
//!
//! A bag model represents a document as a sparse weighted vector with one
//! dimension per distinct n-gram of the corpus. Two instantiations exist:
//! the token n-grams model (**TN**) and the character n-grams model
//! (**CN**); both are built on the same machinery, parameterized only by
//! how the n-grams were extracted (which happens in `pmr-text`).
//!
//! The crate provides the three weighting schemes (boolean frequency,
//! term frequency, TF-IDF — [`weighting`]), the three user-model
//! aggregation functions (sum, centroid, Rocchio — [`aggregate`]) and the
//! three similarity measures (cosine, Jaccard, generalized Jaccard —
//! [`similarity`]) exactly as defined in §3.2, including the validity rules
//! of §4 (JS only with BF, GJS only with TF/TF-IDF, BF only with sum,
//! Rocchio only with cosine; CN is never combined with TF-IDF).
//!
//! Two hot-path variants back the sweep harness without changing any
//! result bit: [`weighting::IndexedVectorizer`] fits over pre-interned
//! gram ids instead of strings, and [`kernel::ScoringKernel`] pre-expands
//! a user model once and scores each document in O(nnz(doc)) for cosine
//! and Jaccard (the merge-join in [`similarity`] stays as the reference).

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod aggregate;
pub mod kernel;
pub mod similarity;
pub mod vector;
pub mod weighting;

pub use aggregate::{AggregationFunction, RocchioParams};
pub use kernel::ScoringKernel;
pub use similarity::BagSimilarity;
pub use vector::SparseVector;
pub use weighting::{BagVectorizer, IndexedVectorizer, WeightingScheme};
