//! Indexed scoring kernel: term-at-a-time scoring against a pre-expanded
//! user model.
//!
//! The sweep scores every test document against the *same* user model, so
//! the per-pair sorted-merge of [`crate::similarity`] repays O(nnz(model))
//! work per document that depends only on the model. [`ScoringKernel`]
//! hoists that work to construction time — a dense weight accumulator over
//! the model's dimensions, its Euclidean norm, and its positive support
//! size — and then scores each document in O(nnz(doc)) lookups for cosine
//! and Jaccard.
//!
//! Generalized Jaccard is the exception: its denominator `Σ max(w_a, w_b)`
//! ranges over the *union* of dimensions and is accumulated in f64 in
//! sorted dimension order; decomposing it into a model-only prefix plus
//! document-driven updates would re-associate that sum and change the
//! rounding of the final bits. Since determinism is non-negotiable, GJS
//! keeps a two-pointer merge — but over model weights pre-clamped to
//! `max(w, 0)` and pre-widened to f64 once, rather than per pair.
//!
//! Every path reproduces [`BagSimilarity::compare`] bit-for-bit (the
//! property tests below assert exactly that); the merge-join remains in
//! [`crate::similarity`] as the reference implementation.

use pmr_text::vocab::TermId;

use crate::similarity::BagSimilarity;
use crate::vector::SparseVector;

/// A user model pre-expanded for repeated scoring under one similarity.
#[derive(Debug, Clone)]
pub struct ScoringKernel {
    similarity: BagSimilarity,
    /// Model weight per dimension, dense up to the model's largest
    /// dimension (cosine + Jaccard). A zero means "absent": sparse vectors
    /// never store zero weights, so the encoding is unambiguous.
    dense: Vec<f32>,
    /// The model's Euclidean norm, computed once (cosine).
    norm: f32,
    /// Number of model dimensions with weight > 0 (Jaccard).
    positive_support: usize,
    /// Model entries with weights clamped to `max(w, 0)` and widened to
    /// f64, in dimension order (generalized Jaccard).
    clamped: Vec<(TermId, f64)>,
}

impl ScoringKernel {
    /// Pre-expand `model` for scoring under `similarity`.
    pub fn new(similarity: BagSimilarity, model: &SparseVector) -> ScoringKernel {
        let entries = model.entries();
        let mut dense = Vec::new();
        let mut clamped = Vec::new();
        match similarity {
            BagSimilarity::Cosine | BagSimilarity::Jaccard => {
                let size = entries.last().map_or(0, |&(d, _)| d as usize + 1);
                dense = vec![0.0f32; size];
                for &(d, w) in entries {
                    dense[d as usize] = w;
                }
            }
            BagSimilarity::GeneralizedJaccard => {
                clamped = entries.iter().map(|&(d, w)| (d, w.max(0.0) as f64)).collect();
            }
        }
        ScoringKernel {
            similarity,
            dense,
            norm: model.norm(),
            positive_support: entries.iter().filter(|&&(_, w)| w > 0.0).count(),
            clamped,
        }
    }

    /// The similarity this kernel scores under.
    pub fn similarity(&self) -> BagSimilarity {
        self.similarity
    }

    /// The model's Euclidean norm (cached at construction).
    pub fn norm(&self) -> f32 {
        self.norm
    }

    /// Number of model dimensions with positive weight.
    pub fn positive_support(&self) -> usize {
        self.positive_support
    }

    /// Score a document against the pre-expanded model. Bit-identical to
    /// `self.similarity().compare(model, doc)`.
    pub fn score(&self, doc: &SparseVector) -> f64 {
        match self.similarity {
            BagSimilarity::Cosine => self.cosine(doc),
            BagSimilarity::Jaccard => self.jaccard(doc),
            BagSimilarity::GeneralizedJaccard => self.generalized_jaccard(doc),
        }
    }

    /// Score every document in `docs`, in order. Exactly `docs.iter().map(|d|
    /// self.score(d))` — one entry point for batch consumers (the sweep's
    /// exhaustive path, benches) so batching strategy changes land in one
    /// place without touching call sites.
    pub fn score_many(&self, docs: &[SparseVector]) -> Vec<f64> {
        docs.iter().map(|doc| self.score(doc)).collect()
    }

    /// Score a shortlist into a pre-filled output slice: for each position
    /// `p` in `positions`, set `out[p] = self.score(&docs[p])`; other slots
    /// are left untouched. This is the rescore half of pruned retrieval —
    /// the caller zero-fills `out` first, which is exact because a document
    /// absent from the shortlist has no overlap with the model and every
    /// bag similarity maps zero overlap to exactly `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of bounds for `docs` or `out`.
    pub fn score_positions(&self, docs: &[SparseVector], positions: &[u32], out: &mut [f64]) {
        for &p in positions {
            out[p as usize] = self.score(&docs[p as usize]);
        }
    }

    /// Cosine via dense lookups: the merge-join dot product visits the
    /// common dimensions in sorted order; so does this loop, because doc
    /// entries are sorted and absent model dimensions read 0.0 and are
    /// skipped — identical f32 accumulation order, identical bits.
    fn cosine(&self, doc: &SparseVector) -> f64 {
        let nb = doc.norm();
        if self.norm == 0.0 || nb == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0f32;
        for &(d, wd) in doc.entries() {
            let wm = self.dense.get(d as usize).copied().unwrap_or(0.0);
            if wm != 0.0 {
                acc += wm * wd;
            }
        }
        (acc / (self.norm * nb)) as f64
    }

    /// Set Jaccard from the document side: integer counting only, so the
    /// union size `|model⁺| + |doc⁺| − |model⁺ ∩ doc⁺|` is exact.
    fn jaccard(&self, doc: &SparseVector) -> f64 {
        let mut positive_doc = 0usize;
        let mut intersection = 0usize;
        for &(d, wd) in doc.entries() {
            if wd > 0.0 {
                positive_doc += 1;
                if self.dense.get(d as usize).copied().unwrap_or(0.0) > 0.0 {
                    intersection += 1;
                }
            }
        }
        let union = self.positive_support + positive_doc - intersection;
        if union == 0 {
            0.0
        } else {
            intersection as f64 / union as f64
        }
    }

    /// Generalized Jaccard over the pre-clamped model (see module docs for
    /// why this one keeps the merge).
    fn generalized_jaccard(&self, doc: &SparseVector) -> f64 {
        let a = &self.clamped;
        let b = doc.entries();
        let (mut i, mut j) = (0usize, 0usize);
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(&(da, wa)), Some(&(db, wb))) => match da.cmp(&db) {
                    std::cmp::Ordering::Less => {
                        den += wa;
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        den += wb.max(0.0) as f64;
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        let wb = wb.max(0.0) as f64;
                        num += wa.min(wb);
                        den += wa.max(wb);
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(_, wa)), None) => {
                    den += wa;
                    i += 1;
                }
                (None, Some(&(_, wb))) => {
                    den += wb.max(0.0) as f64;
                    j += 1;
                }
                (None, None) => unreachable!("loop condition guards this"),
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [BagSimilarity; 3] =
        [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard];

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    fn assert_matches_reference(model: &SparseVector, doc: &SparseVector) {
        for sim in ALL {
            let kernel = ScoringKernel::new(sim, model);
            assert_eq!(
                kernel.score(doc).to_bits(),
                sim.compare(model, doc).to_bits(),
                "{}: kernel must match the merge-join bit-for-bit",
                sim.name()
            );
        }
    }

    #[test]
    fn matches_reference_on_overlapping_vectors() {
        let model = v(&[(0, 0.5), (2, 1.5), (7, 0.25), (9, 2.0)]);
        let doc = v(&[(2, 1.0), (3, 4.0), (9, 0.5), (11, 1.0)]);
        assert_matches_reference(&model, &doc);
    }

    #[test]
    fn matches_reference_with_negative_rocchio_weights() {
        let model = v(&[(0, -0.5), (2, 1.5), (5, -2.0), (9, 2.0)]);
        let doc = v(&[(0, 1.0), (5, 1.0), (9, -0.5)]);
        assert_matches_reference(&model, &doc);
    }

    #[test]
    fn matches_reference_on_empty_vectors() {
        let model = v(&[(1, 1.0)]);
        let empty = v(&[]);
        assert_matches_reference(&model, &empty);
        assert_matches_reference(&empty, &model);
        assert_matches_reference(&empty, &empty);
    }

    #[test]
    fn matches_reference_when_doc_exceeds_model_dimensions() {
        // Doc dimensions beyond the dense table's length take the
        // `.get() → None` path.
        let model = v(&[(0, 1.0), (1, 1.0)]);
        let doc = v(&[(1, 1.0), (500, 3.0)]);
        assert_matches_reference(&model, &doc);
    }

    #[test]
    fn batch_entry_points_match_single_scoring() {
        let model = v(&[(0, 0.5), (2, 1.5), (7, 0.25)]);
        let docs = [v(&[(2, 1.0), (3, 4.0)]), v(&[]), v(&[(0, -1.0), (7, 2.0)]), v(&[(11, 1.0)])];
        for sim in ALL {
            let kernel = ScoringKernel::new(sim, &model);
            let singles: Vec<f64> = docs.iter().map(|d| kernel.score(d)).collect();
            let batch = kernel.score_many(&docs);
            assert_eq!(batch.len(), singles.len());
            for (b, s) in batch.iter().zip(&singles) {
                assert_eq!(b.to_bits(), s.to_bits());
            }
            // Shortlist rescore: positions 0 and 2 scored, the rest keep
            // their zero fill (doc 3 has no overlap, doc 1 is empty).
            let mut out = vec![0.0f64; docs.len()];
            kernel.score_positions(&docs, &[0, 2], &mut out);
            assert_eq!(out[0].to_bits(), singles[0].to_bits());
            assert_eq!(out[2].to_bits(), singles[2].to_bits());
            assert_eq!(out[1].to_bits(), 0.0f64.to_bits());
            assert_eq!(out[3].to_bits(), 0.0f64.to_bits());
        }
    }

    #[test]
    fn norm_and_support_are_cached() {
        let model = v(&[(0, 3.0), (1, 4.0), (2, -1.0)]);
        let kernel = ScoringKernel::new(BagSimilarity::Cosine, &model);
        assert_eq!(kernel.norm().to_bits(), model.norm().to_bits());
        assert_eq!(kernel.positive_support(), 2);
        assert_eq!(kernel.similarity(), BagSimilarity::Cosine);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary sparse vectors including negative (Rocchio-style) weights,
    /// zero-weight collisions and empty vectors.
    fn arb_vec() -> impl Strategy<Value = SparseVector> {
        proptest::collection::vec((0u32..60, -5.0f32..5.0), 0..30)
            .prop_map(SparseVector::from_pairs)
    }

    proptest! {
        #[test]
        fn kernel_equals_merge_join_bit_for_bit(model in arb_vec(), doc in arb_vec()) {
            for sim in [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard] {
                let kernel = ScoringKernel::new(sim, &model);
                prop_assert_eq!(
                    kernel.score(&doc).to_bits(),
                    sim.compare(&model, &doc).to_bits(),
                    "{} diverged for model={:?} doc={:?}", sim.name(), &model, &doc
                );
            }
        }

        #[test]
        fn kernel_reuse_is_stable_across_docs(model in arb_vec(), docs in proptest::collection::vec(arb_vec(), 0..8)) {
            // One kernel scoring many docs gives the same answers as fresh
            // kernels — nothing about scoring mutates the pre-expansion.
            for sim in [BagSimilarity::Cosine, BagSimilarity::Jaccard, BagSimilarity::GeneralizedJaccard] {
                let kernel = ScoringKernel::new(sim, &model);
                for doc in &docs {
                    let fresh = ScoringKernel::new(sim, &model);
                    prop_assert_eq!(kernel.score(doc).to_bits(), fresh.score(doc).to_bits());
                }
            }
        }
    }
}
