//! User-model aggregation functions for bag models (§3.2).
//!
//! A user model is assembled from the document vectors of her
//! representation source with one of:
//!
//! * **sum** — `a(w_j) = Σ_i w_ij`;
//! * **centroid** — mean of *unit-normalized* document vectors;
//! * **Rocchio** — `α`-weighted centroid of positive documents minus
//!   `β`-weighted centroid of negative documents (α + β = 1; the paper uses
//!   α = 0.8, β = 0.2 and applies Rocchio only to representation sources
//!   that contain both positive and negative examples).

use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

use crate::vector::SparseVector;

/// Rocchio mixing parameters with `alpha + beta = 1.0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocchioParams {
    /// Weight of the positive centroid.
    pub alpha: f32,
    /// Weight of the negative centroid.
    pub beta: f32,
}

impl RocchioParams {
    /// The paper's configuration: α = 0.8, β = 0.2.
    pub const PAPER: RocchioParams = RocchioParams { alpha: 0.8, beta: 0.2 };
}

impl Default for RocchioParams {
    fn default() -> Self {
        RocchioParams::PAPER
    }
}

/// The three aggregation functions of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AggregationFunction {
    /// Plain sum of document weights.
    Sum,
    /// Centroid of unit document vectors.
    Centroid,
    /// Rocchio over positive and negative documents.
    Rocchio(RocchioParams),
}

impl AggregationFunction {
    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            AggregationFunction::Sum => "Sum",
            AggregationFunction::Centroid => "Cen.",
            AggregationFunction::Rocchio(_) => "Ro.",
        }
    }

    /// Aggregate document vectors into a user model.
    ///
    /// `positives` are the documents that capture the user's interests;
    /// `negatives` are only consumed by Rocchio (the other functions ignore
    /// them, as the paper's sum/centroid models are built from positive
    /// content only).
    pub fn aggregate(self, positives: &[SparseVector], negatives: &[SparseVector]) -> SparseVector {
        match self {
            AggregationFunction::Sum => dense_accumulate(positives, |_| 1.0),
            AggregationFunction::Centroid => centroid(positives),
            AggregationFunction::Rocchio(p) => {
                let mut acc = SparseVector::new();
                let pos = centroid_unnormalized_count(positives);
                acc.add_scaled(&pos, p.alpha);
                let neg = centroid_unnormalized_count(negatives);
                acc.add_scaled(&neg, -p.beta);
                acc
            }
        }
    }
}

/// Centroid of unit-normalized vectors: `(1/|D|) Σ v/‖v‖`.
fn centroid(docs: &[SparseVector]) -> SparseVector {
    centroid_unnormalized_count(docs)
}

/// Shared helper: mean of unit document vectors (zero vectors contribute
/// nothing but still count toward `|D|`, matching the paper's formula).
fn centroid_unnormalized_count(docs: &[SparseVector]) -> SparseVector {
    if docs.is_empty() {
        return SparseVector::new();
    }
    let inv = 1.0 / docs.len() as f32;
    dense_accumulate(docs, |v| {
        let n = v.norm();
        if n > 0.0 {
            inv / n
        } else {
            0.0
        }
    })
}

/// `Σ_v factor(v) · v` over a dense accumulator: O(total nnz) instead of
/// the O(|D| · |model|) of repeated sparse merges.
///
/// Bit-identical to folding with [`SparseVector::add_scaled`]: each
/// dimension receives the same `w · factor` contributions in the same
/// document order, and exact zeros are dropped from the result just as
/// every intermediate merge dropped them (re-adding to a dropped ±0.0 and
/// pushing a fresh value are the same f32). A `factor` of exactly `0.0`
/// skips the document, mirroring `add_scaled`'s guard.
fn dense_accumulate<F: Fn(&SparseVector) -> f32>(docs: &[SparseVector], factor: F) -> SparseVector {
    let mut acc: Vec<f32> = Vec::new();
    let mut seen: Vec<bool> = Vec::new();
    let mut touched: Vec<TermId> = Vec::new();
    for v in docs {
        let s = factor(v);
        if s == 0.0 {
            continue;
        }
        for &(d, w) in v.entries() {
            let di = d as usize;
            if di >= acc.len() {
                acc.resize(di + 1, 0.0);
                seen.resize(di + 1, false);
            }
            if !seen[di] {
                seen[di] = true;
                touched.push(d);
            }
            acc[di] += w * s;
        }
    }
    touched.sort_unstable();
    SparseVector::from_pairs(
        touched.into_iter().map(|d| (d, acc[d as usize])).filter(|&(_, w)| w != 0.0).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    #[test]
    fn sum_adds_raw_weights() {
        let out =
            AggregationFunction::Sum.aggregate(&[v(&[(0, 1.0)]), v(&[(0, 2.0), (1, 1.0)])], &[]);
        assert_eq!(out.get(0), 3.0);
        assert_eq!(out.get(1), 1.0);
    }

    #[test]
    fn centroid_normalizes_documents_first() {
        // One long and one short doc pointing at different dims: with unit
        // normalization they contribute equally.
        let out = AggregationFunction::Centroid.aggregate(&[v(&[(0, 10.0)]), v(&[(1, 0.1)])], &[]);
        assert!((out.get(0) - 0.5).abs() < 1e-6);
        assert!((out.get(1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rocchio_subtracts_negatives() {
        let pos = [v(&[(0, 1.0)])];
        let neg = [v(&[(0, 1.0), (1, 1.0)])];
        let out = AggregationFunction::Rocchio(RocchioParams::PAPER).aggregate(&pos, &neg);
        assert!(out.get(0) > 0.0, "positive-heavy dim stays positive");
        assert!(out.get(1) < 0.0, "negative-only dim goes negative");
    }

    #[test]
    fn rocchio_with_no_negatives_is_scaled_centroid() {
        let pos = [v(&[(0, 3.0)])];
        let out = AggregationFunction::Rocchio(RocchioParams::PAPER).aggregate(&pos, &[]);
        assert!((out.get(0) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_yield_empty_models() {
        for f in [
            AggregationFunction::Sum,
            AggregationFunction::Centroid,
            AggregationFunction::Rocchio(RocchioParams::PAPER),
        ] {
            assert!(f.aggregate(&[], &[]).is_empty());
        }
    }

    #[test]
    fn paper_params_sum_to_one() {
        let p = RocchioParams::PAPER;
        assert!((p.alpha + p.beta - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_documents_count_toward_the_denominator() {
        let out = AggregationFunction::Centroid.aggregate(&[v(&[(0, 1.0)]), v(&[])], &[]);
        assert!((out.get(0) - 0.5).abs() < 1e-6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// The pre-optimization implementation: fold documents into the model
    /// with repeated sparse merges. Kept as the reference the dense
    /// accumulator must match bit-for-bit.
    fn aggregate_by_merging(
        f: AggregationFunction,
        positives: &[SparseVector],
        negatives: &[SparseVector],
    ) -> SparseVector {
        fn merge_centroid(docs: &[SparseVector]) -> SparseVector {
            if docs.is_empty() {
                return SparseVector::new();
            }
            let mut acc = SparseVector::new();
            let inv = 1.0 / docs.len() as f32;
            for v in docs {
                let n = v.norm();
                if n > 0.0 {
                    acc.add_scaled(v, inv / n);
                }
            }
            acc
        }
        match f {
            AggregationFunction::Sum => {
                let mut acc = SparseVector::new();
                for v in positives {
                    acc.add_scaled(v, 1.0);
                }
                acc
            }
            AggregationFunction::Centroid => merge_centroid(positives),
            AggregationFunction::Rocchio(p) => {
                let mut acc = SparseVector::new();
                acc.add_scaled(&merge_centroid(positives), p.alpha);
                acc.add_scaled(&merge_centroid(negatives), -p.beta);
                acc
            }
        }
    }

    /// Documents over a small dimension range so overlap (and, with
    /// negative TF-IDF-style weights, mid-fold cancellation) happens.
    fn arb_docs() -> impl Strategy<Value = Vec<SparseVector>> {
        proptest::collection::vec(
            proptest::collection::vec((0u32..30, -4.0f32..4.0), 0..12)
                .prop_map(SparseVector::from_pairs),
            0..10,
        )
    }

    proptest! {
        #[test]
        fn dense_accumulation_equals_merge_fold_bit_for_bit(
            positives in arb_docs(),
            negatives in arb_docs(),
        ) {
            for f in [
                AggregationFunction::Sum,
                AggregationFunction::Centroid,
                AggregationFunction::Rocchio(RocchioParams::PAPER),
            ] {
                let dense = f.aggregate(&positives, &negatives);
                let merged = aggregate_by_merging(f, &positives, &negatives);
                prop_assert_eq!(dense.entries().len(), merged.entries().len());
                for (&(da, wa), &(db, wb)) in dense.entries().iter().zip(merged.entries()) {
                    prop_assert_eq!(da, db);
                    prop_assert_eq!(wa.to_bits(), wb.to_bits());
                }
            }
        }
    }
}
