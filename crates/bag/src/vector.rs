//! Sparse weighted vectors over interned n-gram dimensions.

use serde::{Deserialize, Serialize};

use pmr_text::vocab::TermId;

/// A sparse vector: `(dimension, weight)` pairs sorted by dimension with no
/// duplicates and no explicit zeros.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(TermId, f32)>,
}

impl SparseVector {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unordered `(dimension, weight)` pairs; duplicate
    /// dimensions are summed, zero weights dropped.
    pub fn from_pairs(mut pairs: Vec<(TermId, f32)>) -> Self {
        pairs.sort_by_key(|&(id, _)| id);
        let mut entries: Vec<(TermId, f32)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some(last) if last.0 == id => last.1 += w,
                _ => entries.push((id, w)),
            }
        }
        entries.retain(|&(_, w)| w != 0.0);
        SparseVector { entries }
    }

    /// The entries, sorted by dimension.
    pub fn entries(&self) -> &[(TermId, f32)] {
        &self.entries
    }

    /// Number of non-zero dimensions.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector is all-zero.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weight of a dimension (0 if absent).
    pub fn get(&self, id: TermId) -> f32 {
        match self.entries.binary_search_by_key(&id, |&(d, _)| d) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0.0,
        }
    }

    /// Euclidean magnitude.
    pub fn norm(&self) -> f32 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt()
    }

    /// Dot product with another sparse vector (two-pointer merge).
    pub fn dot(&self, other: &SparseVector) -> f32 {
        let mut acc = 0.0f32;
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// In-place scaling.
    pub fn scale(&mut self, factor: f32) {
        if factor == 0.0 {
            self.entries.clear();
            return;
        }
        for e in &mut self.entries {
            e.1 *= factor;
        }
    }

    /// Return a copy normalized to unit length (unchanged if zero).
    pub fn normalized(&self) -> SparseVector {
        let n = self.norm();
        if n == 0.0 {
            return self.clone();
        }
        let mut v = self.clone();
        v.scale(1.0 / n);
        v
    }

    /// Add `factor · other` into `self` (sparse AXPY).
    pub fn add_scaled(&mut self, other: &SparseVector, factor: f32) {
        if factor == 0.0 || other.is_empty() {
            return;
        }
        let mut merged: Vec<(TermId, f32)> =
            Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.entries, &other.entries);
        while i < a.len() || j < b.len() {
            match (a.get(i), b.get(j)) {
                (Some(&(da, wa)), Some(&(db, wb))) => match da.cmp(&db) {
                    std::cmp::Ordering::Less => {
                        merged.push((da, wa));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((db, wb * factor));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((da, wa + wb * factor));
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(da, wa)), None) => {
                    merged.push((da, wa));
                    i += 1;
                }
                (None, Some(&(db, wb))) => {
                    merged.push((db, wb * factor));
                    j += 1;
                }
                (None, None) => unreachable!("loop condition guards this"),
            }
        }
        merged.retain(|&(_, w)| w != 0.0);
        self.entries = merged;
    }
}

impl FromIterator<(TermId, f32)> for SparseVector {
    fn from_iter<T: IntoIterator<Item = (TermId, f32)>>(iter: T) -> Self {
        SparseVector::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    #[test]
    fn from_pairs_sorts_merges_and_drops_zeros() {
        let x = v(&[(3, 1.0), (1, 2.0), (3, 2.0), (5, 0.0)]);
        assert_eq!(x.entries(), &[(1, 2.0), (3, 3.0)]);
    }

    #[test]
    fn get_returns_zero_for_missing() {
        let x = v(&[(1, 2.0)]);
        assert_eq!(x.get(1), 2.0);
        assert_eq!(x.get(2), 0.0);
    }

    #[test]
    fn dot_product_merges_correctly() {
        let a = v(&[(1, 1.0), (2, 2.0), (4, 3.0)]);
        let b = v(&[(2, 5.0), (3, 7.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 3.0 * 1.0);
    }

    #[test]
    fn norm_is_euclidean() {
        let x = v(&[(0, 3.0), (1, 4.0)]);
        assert!((x.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_has_unit_length() {
        let x = v(&[(0, 3.0), (1, 4.0)]);
        assert!((x.normalized().norm() - 1.0).abs() < 1e-6);
        assert!(v(&[]).normalized().is_empty());
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut x = v(&[(1, 1.0), (3, 1.0)]);
        x.add_scaled(&v(&[(1, 1.0), (2, 2.0)]), 0.5);
        assert_eq!(x.entries(), &[(1, 1.5), (2, 1.0), (3, 1.0)]);
    }

    #[test]
    fn add_scaled_cancellation_removes_entry() {
        let mut x = v(&[(1, 1.0)]);
        x.add_scaled(&v(&[(1, 1.0)]), -1.0);
        assert!(x.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_vec() -> impl Strategy<Value = SparseVector> {
        proptest::collection::vec((0u32..40, -5.0f32..5.0), 0..25)
            .prop_map(SparseVector::from_pairs)
    }

    proptest! {
        #[test]
        fn entries_are_sorted_and_unique(x in arb_vec()) {
            for w in x.entries().windows(2) {
                prop_assert!(w[0].0 < w[1].0);
            }
            prop_assert!(x.entries().iter().all(|&(_, w)| w != 0.0));
        }

        #[test]
        fn dot_is_commutative(a in arb_vec(), b in arb_vec()) {
            prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-4);
        }

        #[test]
        fn dot_with_self_is_norm_squared(a in arb_vec()) {
            prop_assert!((a.dot(&a) - a.norm() * a.norm()).abs() < 1e-3);
        }

        #[test]
        fn add_scaled_matches_dense_semantics(a in arb_vec(), b in arb_vec(), f in -3.0f32..3.0) {
            let mut c = a.clone();
            c.add_scaled(&b, f);
            for id in 0u32..40 {
                let expected = a.get(id) + f * b.get(id);
                prop_assert!((c.get(id) - expected).abs() < 1e-4);
            }
        }
    }
}
